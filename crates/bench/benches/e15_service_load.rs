//! E15: service load — the verification service end to end, on real
//! threads. N client threads submit compgen jobs over wire frames to one
//! [`ddws_server::Server`] with a worker pool, poll to completion, and
//! measure per-job turnaround. Two cells: the plain fleet, and the same
//! fleet with the budget-explosive `starver` scenario queued *first* —
//! the round-robin scheduler's quantum preemption is what keeps the
//! second cell's p99 finite, so the cell pair is the wall-clock face of
//! the fairness law `tests/server_sim.rs` proves deterministically.
//!
//! The acceptance pass asserts every cell drains every job to a terminal
//! state (the starver included — its budget is finite) and that adding
//! the starver does not sink fleet throughput below the floor; jobs/sec
//! and p50/p99 latency per cell land in `BENCH_E15.json` at the
//! workspace root, with one served job's redacted `RunReport` embedded
//! and schema-validated.

use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_server::{
    decode_response, encode_request, ErrorCode, JobOptions, JobSpec, Request, Response, Server,
    ServerConfig,
};
use ddws_testkit::compgen;
use ddws_testkit::rng::XorShift;
use ddws_verifier::{validate_run_report, RunReport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One load cell: `clients` threads × `jobs_per_client` compgen jobs,
/// optionally with the starver queued ahead of everyone.
#[derive(Clone, Copy)]
struct Cell {
    name: &'static str,
    clients: usize,
    jobs_per_client: usize,
    starver: bool,
}

fn cells(smoke: bool) -> Vec<Cell> {
    let (clients, jobs) = if smoke { (2, 2) } else { (4, 4) };
    vec![
        Cell {
            name: "fleet",
            clients,
            jobs_per_client: jobs,
            starver: false,
        },
        Cell {
            name: "fleet_with_starver",
            clients,
            jobs_per_client: jobs,
            starver: true,
        },
    ]
}

/// Per-job state budget. Finite so even the starver terminates; large
/// enough that multi-slice parking is the norm, not the exception.
const JOB_BUDGET: u64 = 20_000;

/// One wire round-trip against an in-process server.
fn call(server: &Server, id: u64, req: &Request) -> Response {
    let bytes = server.handle_frame(&encode_request(id, req));
    let (rid, resp, _) = decode_response(&bytes).expect("server frames decode");
    assert_eq!(rid, id, "correlation id echoes");
    resp
}

/// Submits a job and polls `fetch_result` until terminal; returns the
/// verdict and the submit→verdict latency.
fn run_job(server: &Server, spec: JobSpec) -> (u64, String, Duration) {
    let start = Instant::now();
    let job = match call(
        server,
        1,
        &Request::SubmitJob {
            spec,
            options: JobOptions {
                budget: JOB_BUDGET,
                ..JobOptions::default()
            },
            submit_token: None,
        },
    ) {
        Response::Accepted { job } => job,
        other => panic!("submission rejected: {other:?}"),
    };
    loop {
        match call(server, 2, &Request::FetchResult { job }) {
            Response::Result { verdict, .. } => return (job, verdict, start.elapsed()),
            Response::Error(e) if e.code == ErrorCode::JobNotTerminal => {
                std::thread::sleep(Duration::from_micros(300));
            }
            other => panic!("fetch({job}) answered {other:?}"),
        }
    }
}

/// Results of one measured cell.
struct CellRun {
    jobs: usize,
    wall: Duration,
    /// Sorted latencies of the *fleet* jobs (starver excluded — its
    /// latency measures the budget, not the service).
    latencies_ns: Vec<u128>,
    starver_verdict: Option<String>,
    /// Quanta the starver was preempted across.
    starver_slices: Option<u64>,
    /// Scheduler step at which the starver terminalized.
    starver_completed_step: Option<u64>,
    /// Scheduler steps at which the fleet jobs terminalized.
    fleet_completed_steps: Vec<u64>,
    sample_report: RunReport,
}

fn run_cell(cell: &Cell, workers: usize, seed: u64) -> CellRun {
    let server = Arc::new(Server::new(ServerConfig {
        quantum_states: 1_024,
        ..ServerConfig::default()
    }));
    let pool = server.run_workers(workers);

    // The starver goes in before any client thread exists, so it owns
    // the head of the round-robin queue.
    let starver = cell.starver.then(|| {
        let (job, _, _) = {
            let submit = call(
                &server,
                1,
                &Request::SubmitJob {
                    spec: JobSpec::Scenario("starver".to_string()),
                    options: JobOptions {
                        budget: JOB_BUDGET,
                        ..JobOptions::default()
                    },
                    submit_token: None,
                },
            );
            match submit {
                Response::Accepted { job } => (job, (), ()),
                other => panic!("starver rejected: {other:?}"),
            }
        };
        job
    });

    let start = Instant::now();
    let handles: Vec<_> = (0..cell.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let jobs = cell.jobs_per_client;
            std::thread::spawn(move || {
                let mut rng = XorShift::new(seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
                let mut lat = Vec::with_capacity(jobs);
                for _ in 0..jobs {
                    let spec = JobSpec::Spec(compgen::spec(&mut rng));
                    let (_, verdict, took) = run_job(&server, spec);
                    assert!(
                        ["holds", "violated", "budget_exceeded"].contains(&verdict.as_str()),
                        "fleet job ended {verdict:?}"
                    );
                    lat.push(took.as_nanos());
                }
                lat
            })
        })
        .collect();
    let mut latencies_ns: Vec<u128> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = start.elapsed();
    latencies_ns.sort_unstable();

    // Drain the starver too — the cell is only done when *everything*
    // is terminal.
    let starver_verdict = starver.map(|job| loop {
        match call(&server, 3, &Request::FetchResult { job }) {
            Response::Result { verdict, .. } => break verdict,
            Response::Error(e) if e.code == ErrorCode::JobNotTerminal => {
                std::thread::sleep(Duration::from_micros(300));
            }
            other => panic!("fetch(starver) answered {other:?}"),
        }
    });
    pool.shutdown();

    let rows = server.jobs();
    let starver_slices = starver.map(|job| rows[job as usize].slices);
    let starver_completed_step = starver.and_then(|job| rows[job as usize].completed_step);
    let fleet_completed_steps = rows
        .iter()
        .filter(|j| Some(j.job) != starver)
        .filter_map(|j| j.completed_step)
        .collect();
    let sample_report = rows
        .iter()
        .find_map(|j| server.redacted_report(j.job))
        .expect("some served job carries a final report");
    CellRun {
        jobs: cell.clients * cell.jobs_per_client,
        wall,
        latencies_ns,
        starver_verdict,
        starver_slices,
        starver_completed_step,
        fleet_completed_steps,
        sample_report,
    }
}

fn percentile(sorted_ns: &[u128], p: usize) -> u128 {
    assert!(!sorted_ns.is_empty());
    sorted_ns[(sorted_ns.len() - 1) * p / 100]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_service_load");
    group.sample_size(10);

    // The timing group measures the service's fixed costs: one wire
    // round-trip (framing + dispatch + admission reject on a bad job
    // id), and one whole job end to end on the smallest scenario.
    let server = Server::new(ServerConfig::default());
    group.bench_with_input(BenchmarkId::new("wire", "status_unknown"), &(), |b, ()| {
        b.iter(|| call(&server, 5, &Request::JobStatus { job: 9_999 }))
    });
    let served = Arc::new(Server::new(ServerConfig {
        quantum_states: 1_024,
        ..ServerConfig::default()
    }));
    let pool = served.run_workers(1);
    group.bench_with_input(BenchmarkId::new("job", "req_resp_e2e"), &(), |b, ()| {
        b.iter(|| run_job(&served, JobSpec::Scenario("req_resp".to_string())).2)
    });
    group.finish();
    pool.shutdown();

    acceptance();
}

/// The E15 acceptance bar: every cell completes all jobs; the starver
/// ends `budget_exceeded` without sinking fleet throughput below the
/// floor; jobs/sec + p50/p99 land in `BENCH_E15.json`.
fn acceptance() {
    let smoke = std::env::var("DDWS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let samples = std::env::var("DDWS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(1, 4);

    let mut rows = Vec::new();
    let mut fleet_jps = 0.0f64;
    let mut starved_jps = 0.0f64;
    let mut bench_report: Option<RunReport> = None;
    for cell in cells(smoke) {
        // Keep the best of `samples` runs per cell: thread scheduling
        // noise only ever slows a run down.
        let mut best: Option<CellRun> = None;
        for s in 0..samples {
            let run = run_cell(&cell, workers, 0xe15_0000 + s as u64);
            assert_eq!(
                run.latencies_ns.len(),
                run.jobs,
                "{}: a fleet job never completed",
                cell.name
            );
            if cell.starver {
                // The finite budget guarantees termination either way;
                // what the cell must witness is *preemption* — the
                // starver parked across many quanta while the fleet ran.
                let verdict = run.starver_verdict.as_deref().expect("starver fetched");
                assert!(
                    ["holds", "budget_exceeded"].contains(&verdict),
                    "{}: the starver ended {verdict:?}",
                    cell.name
                );
                let slices = run.starver_slices.expect("starver summarized");
                assert!(
                    slices >= 4,
                    "{}: starver ran in {slices} slice(s) — not pathological enough \
                     to exercise the round-robin",
                    cell.name
                );
                // The fairness witness, in schedule ordinals (immune to
                // timing noise): round-robin preemption must complete
                // every fleet job *before* the head-of-queue starver —
                // a run-to-completion scheduler would finish the starver
                // first and give every fleet job its latency.
                let starver_done = run
                    .starver_completed_step
                    .expect("terminal starver has a completion step");
                for &done in &run.fleet_completed_steps {
                    assert!(
                        done < starver_done,
                        "{}: a fleet job completed at step {done}, after the starver \
                         at step {starver_done} — the round-robin failed to preempt",
                        cell.name
                    );
                }
            }
            if best.as_ref().is_none_or(|b| run.wall < b.wall) {
                best = Some(run);
            }
        }
        let run = best.expect("at least one sample");
        let jps = run.jobs as f64 / run.wall.as_secs_f64().max(1e-9);
        let p50 = percentile(&run.latencies_ns, 50);
        let p99 = percentile(&run.latencies_ns, 99);
        println!(
            "e15_service_load/acceptance/{}: {} jobs in {:?} ({jps:.1} jobs/s) \
             p50={p50}ns p99={p99}ns workers={workers}",
            cell.name, run.jobs, run.wall
        );
        rows.push(format!(
            "    \"{}\": {{\n      \"clients\": {},\n      \"jobs_per_client\": {},\n      \
             \"starver\": {},\n      \"completed_jobs\": {},\n      \
             \"wall_ns\": {},\n      \"jobs_per_sec\": {jps:.2},\n      \
             \"p50_ns\": {p50},\n      \"p99_ns\": {p99}\n    }}",
            cell.name,
            cell.clients,
            cell.jobs_per_client,
            cell.starver,
            run.jobs,
            run.wall.as_nanos(),
        ));
        if cell.starver {
            starved_jps = jps;
        } else {
            fleet_jps = jps;
        }
        bench_report.get_or_insert(run.sample_report);
    }

    // A catastrophic-starvation backstop on throughput. The real
    // fairness law is the schedule-ordinal assertion above (and the
    // deterministic proof in `tests/server_sim.rs`); wall-clock ratios
    // on a loaded host are only good for catching a total collapse.
    assert!(
        starved_jps >= fleet_jps / 1_000.0,
        "starver sank fleet throughput: {starved_jps:.2} vs {fleet_jps:.2} jobs/s"
    );

    // The bench harness is itself a reporting entry point (DESIGN.md
    // §3.9): relabel one served job's redacted report, validate it
    // against the schema, and keep it in the artifact.
    let bench_report = RunReport {
        entry_point: "bench".into(),
        ..bench_report.expect("at least one cell served a report")
    };
    let report_json = bench_report.to_json();
    let parsed = ddws_telemetry::Json::parse(&report_json).expect("bench report JSON parses");
    validate_run_report(&parsed).expect("bench report validates against the schema");

    let json = format!(
        "{{\n  \"experiment\": \"e15_service_load\",\n  \"mode\": \"{}\",\n  \
         \"samples\": {samples},\n  \"cores\": {cores},\n  \"workers\": {workers},\n  \
         \"job_budget\": {JOB_BUDGET},\n  \"cells\": {{\n{}\n  }},\n  \
         \"run_report\": {report_json}\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E15.json");
    std::fs::write(path, json).expect("write BENCH_E15.json");
    println!("e15_service_load/acceptance: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
