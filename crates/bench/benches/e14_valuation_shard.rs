//! E14: the sharded universal-closure valuation loop — the same
//! many-valuation workloads under `valuation_threads: Some(1)` (the
//! unsharded outer loop through the scheduler) and `Some(4)` (four outer
//! shards with first-violation cancel and the shared grounded-NBA cache).
//!
//! The workload family is built so the *outer* loop dominates: a relay
//! chain whose single-variable closure property grounds once per domain
//! value, padded with an inert `pool` relation whose constants enlarge
//! the domain (one extra valuation each) without touching the transition
//! system. Every valuation therefore searches the same product at the
//! same cost — the embarrassingly-parallel regime the shard scheduler
//! targets — and every grounded formula shares one atom-shape, so the
//! NBA cache translates once and hits `N-1` of `N` lookups.
//!
//! After the timing groups, the acceptance pass measures each workload
//! under both shard counts, asserts the determinism differential on
//! every cell (equal verdict and `states_visited` — sharding must not
//! change what is explored), asserts the ≥90% NBA-cache hit rate, and
//! holds the aggregate wall-clock speedup to the bar (≥3× at full
//! scale, ≥1.5× in the `DDWS_BENCH_SMOKE=1` CI configuration) whenever
//! the host grants ≥4 cores; on smaller hosts the same totals are held
//! to a no-regression bound instead, because a wall-clock bar for a
//! 4-way parallel run is not meetable on one core. Per-phase
//! before/after lands in `BENCH_E14.json` at the workspace root.

use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{
    validate_run_report, DatabaseMode, Reduction, Report, RuleEval, RunReport, Verifier,
    VerifyOptions,
};
use std::time::Instant;

/// One suite cell: a relay chain with `m` live tokens (per-valuation
/// search cost) and `pool` inert constants (extra valuations at zero
/// marginal search cost).
#[derive(Clone, Copy)]
struct Workload {
    name: &'static str,
    m: usize,
    pool: usize,
}

const fn cell(name: &'static str, m: usize, pool: usize) -> Workload {
    Workload { name, m, pool }
}

impl Workload {
    /// Domain size = `m` tokens + `m` private `mine` rows + `pool` inert
    /// constants — one universal valuation each (the composition is
    /// closed, so the fresh-value budget contributes nothing).
    const fn valuations(&self) -> usize {
        2 * self.m + self.pool
    }
}

/// The suite. Both scales keep ≥15 valuations so the expected NBA-cache
/// hit rate `(N-1)/N` clears the 90% bar by construction; full scale
/// raises the per-valuation search cost (≈13 ms at `m = 4`, ≈2.6 ms at
/// `m = 3`) so the shard pool has real work to split.
fn workloads(smoke: bool) -> Vec<Workload> {
    if smoke {
        vec![cell("relay_narrow", 2, 12), cell("relay_wide", 2, 24)]
    } else {
        vec![cell("relay_narrow", 4, 12), cell("relay_wide", 3, 24)]
    }
}

/// The many-valuation join chain (the E13 state-heavy shape, closure
/// variant): P0 emits its `m` tokens over a nested channel, P1 joins
/// them against its private `mine` rows into the arity-2 accumulator
/// `seen2` and ships the extension downstream, P2 records what arrived.
/// The `pool` relation is read by no rule — its rows exist purely to
/// widen the active domain, so the universal closure grounds one extra
/// equal-cost search per row while the transition system itself never
/// changes: every valuation explores the same product, which is exactly
/// the embarrassingly-parallel outer loop E14 shards.
fn many_valuation(m: usize, pool: usize) -> (Composition, Instance, String) {
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics::default());
    b.default_lossy(true);
    b.channel("hop", 1, QueueKind::Nested, "P0", "P1");
    b.channel("rep", 2, QueueKind::Nested, "P1", "P2");
    b.peer("P0")
        .database("token", 1)
        .database("pool", 1)
        .input("emit", 1)
        .input_rule("emit", &["x"], "token(x)")
        .send_rule("hop", &["x"], "emit(x)");
    b.peer("P1")
        .database("mine", 1)
        .state("seen2", 2)
        .state_insert_rule("seen2", &["x", "y"], "mine(x) and ?hop(y)")
        .send_rule("rep", &["x", "y"], "seen2(x, y)");
    b.peer("P2")
        .state("got", 2)
        .state_insert_rule("got", &["x", "y"], "?rep(x, y)");
    let mut comp = b.build().expect("many-valuation join chain composition");
    let mut db = Instance::empty(&comp.voc);
    let token = comp.voc.lookup("P0.token").unwrap();
    let mine = comp.voc.lookup("P1.mine").unwrap();
    let pool_rel = comp.voc.lookup("P0.pool").unwrap();
    for i in 0..m {
        let t = comp.symbols.intern(&format!("t{i}"));
        db.relation_mut(token).insert(Tuple::new(vec![t]));
        let a = comp.symbols.intern(&format!("a{i}"));
        db.relation_mut(mine).insert(Tuple::new(vec![a]));
    }
    for i in 0..pool {
        let p = comp.symbols.intern(&format!("p{i}"));
        db.relation_mut(pool_rel).insert(Tuple::new(vec![p]));
    }
    let prop = "forall x: G (P0.emit(x) -> P0.token(x))".to_string();
    (comp, db, prop)
}

fn opts(db: Instance, valuation_threads: usize) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        threads: None,
        valuation_threads: Some(valuation_threads),
        reduction: Reduction::Full,
        rule_eval: RuleEval::Compiled,
        ..VerifyOptions::default()
    }
}

fn check(w: &Workload, valuation_threads: usize) -> Report {
    let (comp, db, prop) = many_valuation(w.m, w.pool);
    let mut v = Verifier::new(comp);
    let report = v.check_str(&prop, &opts(db, valuation_threads)).unwrap();
    assert!(report.outcome.holds(), "{} must hold", w.name);
    report
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_valuation_shard");
    group.sample_size(10);

    for w in workloads(true) {
        for vt in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(w.name, format!("vt{vt}")),
                &vt,
                |b, &vt| b.iter(|| check(&w, vt).stats.states_visited),
            );
        }
    }

    group.finish();

    acceptance();
}

/// Per-shard-count measurements of one workload cell.
struct Cell {
    median_ns: u128,
    report: Report,
}

fn measure(w: &Workload, valuation_threads: usize, samples: usize) -> Cell {
    let mut ns: Vec<u128> = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples {
        let start = Instant::now();
        let report = check(w, valuation_threads);
        ns.push(start.elapsed().as_nanos());
        last = Some(report);
    }
    ns.sort_unstable();
    Cell {
        median_ns: ns[ns.len() / 2],
        report: last.expect("at least one sample"),
    }
}

fn phase_json(cell: &Cell) -> String {
    let s = &cell.report.stats;
    format!(
        "{{\n        \"median_ns\": {},\n        \"boot_ns\": {},\n        \
         \"successor_ns\": {},\n        \"rule_eval_ns\": {},\n        \
         \"lasso_ns\": {},\n        \"nba_cache_hits\": {},\n        \
         \"nba_cache_misses\": {}\n      }}",
        cell.median_ns,
        s.boot_ns,
        s.successor_ns,
        s.rule_eval_ns,
        s.lasso_ns,
        s.nba_cache_hits,
        s.nba_cache_misses
    )
}

/// The E14 acceptance bar. Every cell runs under both shard counts —
/// the `vt1` run is the determinism oracle, not an option — the NBA
/// cache must hit ≥90%, and on hosts with ≥4 cores the aggregate
/// wall-clock speedup must clear ≥3× at full scale / ≥1.5× at smoke
/// scale. On smaller hosts the sharded totals are held to a
/// no-regression bound instead (the scheduler must not cost wall-clock
/// when it cannot win any).
fn acceptance() {
    let smoke = std::env::var("DDWS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let bar = if smoke { 1.5 } else { 3.0 };
    let samples = std::env::var("DDWS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rows = Vec::new();
    let mut total_sharded: u128 = 0;
    let mut total_unsharded: u128 = 0;
    let mut bench_report: Option<RunReport> = None;
    for w in workloads(smoke) {
        let unsharded = measure(&w, 1, samples);
        let sharded = measure(&w, 4, samples);
        // The determinism differential: the shard count may change who
        // runs what when, never what is explored. Every cell holds, so
        // the per-valuation searches all run to completion and the
        // summed traversal counters must coincide exactly.
        assert_eq!(
            (
                unsharded.report.outcome.holds(),
                unsharded.report.stats.states_visited,
                unsharded.report.valuations_checked,
            ),
            (
                sharded.report.outcome.holds(),
                sharded.report.stats.states_visited,
                sharded.report.valuations_checked,
            ),
            "{}: vt1 and vt4 runs diverged — scheduler bug",
            w.name
        );
        assert_eq!(
            sharded.report.shard_valuations.len(),
            4,
            "{}: vt4 must report one valuation count per shard",
            w.name
        );
        assert_eq!(
            sharded.report.shard_valuations.iter().sum::<u64>(),
            sharded.report.valuations_checked as u64,
            "{}: per-shard valuation counts must partition the total",
            w.name
        );
        // The cache bar: one miss per distinct grounded atom-shape. The
        // single-variable property has exactly one shape, so N
        // valuations translate once and hit N-1 times.
        let s = &sharded.report.stats;
        let lookups = s.nba_cache_hits + s.nba_cache_misses;
        let hit_rate = s.nba_cache_hits as f64 / lookups.max(1) as f64;
        assert_eq!(
            lookups,
            w.valuations() as u64,
            "{}: one NBA-cache lookup per valuation",
            w.name
        );
        assert!(
            hit_rate >= 0.9,
            "{}: expected >=90% NBA-cache hit rate, got {:.1}% ({} hits / {} lookups)",
            w.name,
            hit_rate * 100.0,
            s.nba_cache_hits,
            lookups
        );
        let speedup = unsharded.median_ns as f64 / sharded.median_ns.max(1) as f64;
        println!(
            "e14_valuation_shard/acceptance/{}: vt1={}ns vt4={}ns speedup={speedup:.2}x \
             valuations={} hit_rate={:.1}%",
            w.name,
            unsharded.median_ns,
            sharded.median_ns,
            sharded.report.valuations_checked,
            hit_rate * 100.0
        );
        total_unsharded += unsharded.median_ns;
        total_sharded += sharded.median_ns;
        rows.push(format!(
            "    \"{}\": {{\n      \"scenario\": {{\"m\": {}, \"pool\": {}, \
             \"valuations\": {}}},\n      \"states_visited\": {},\n      \
             \"differential\": \"verdict+states_visited+valuations equal\",\n      \
             \"nba_cache_hit_rate\": {hit_rate:.3},\n      \
             \"shard_valuations\": {:?},\n      \
             \"vt4\": {},\n      \"vt1\": {},\n      \"speedup\": {speedup:.2}\n    }}",
            w.name,
            w.m,
            w.pool,
            w.valuations(),
            sharded.report.stats.states_visited,
            sharded.report.shard_valuations,
            phase_json(&sharded),
            phase_json(&unsharded),
        ));
        bench_report.get_or_insert(sharded.report.telemetry);
    }

    let total_speedup = total_unsharded as f64 / total_sharded.max(1) as f64;
    let bar_enforced = cores >= 4;
    println!(
        "e14_valuation_shard/acceptance/total: vt1={total_unsharded}ns vt4={total_sharded}ns \
         speedup={total_speedup:.2}x (bar {bar:.1}x, {}, {cores} cores{})",
        if smoke { "smoke scale" } else { "full scale" },
        if bar_enforced {
            ""
        } else {
            " — bar waived, no-regression bound enforced"
        }
    );
    if bar_enforced {
        assert!(
            total_speedup >= bar,
            "expected >={bar:.1}x sharded speedup on suite wall-clock, got {total_speedup:.2}x \
             ({total_sharded}ns vs {total_unsharded}ns)"
        );
    } else {
        // One core cannot realize a 4-way parallel win; what it *can*
        // witness is that the scheduler costs ~nothing. Allow generous
        // noise headroom — cells run for milliseconds.
        assert!(
            (total_sharded as f64) <= (total_unsharded as f64) * 1.5,
            "sharded loop regressed wall-clock on a {cores}-core host: \
             {total_sharded}ns vs {total_unsharded}ns"
        );
    }

    // The bench harness is itself a reporting entry point (DESIGN.md
    // §3.9): relabel one measured run's report, validate it against the
    // schema, and keep it in the artifact.
    let bench_report = RunReport {
        entry_point: "bench".into(),
        ..bench_report.expect("at least one sharded sample")
    };
    let report_json = bench_report.to_json();
    let parsed = ddws_telemetry::Json::parse(&report_json).expect("bench report JSON parses");
    validate_run_report(&parsed).expect("bench report validates against the schema");

    let json = format!(
        "{{\n  \"experiment\": \"e14_valuation_shard\",\n  \"mode\": \"{}\",\n  \
         \"samples\": {samples},\n  \"cores\": {cores},\n  \"speedup_bar\": {bar:.1},\n  \
         \"speedup_bar_enforced\": {bar_enforced},\n  \"workloads\": {{\n{}\n  }},\n  \
         \"total\": {{\n    \"vt1_median_ns\": {total_unsharded},\n    \
         \"vt4_median_ns\": {total_sharded},\n    \"speedup\": {total_speedup:.2}\n  }},\n  \
         \"run_report\": {report_json}\n}}\n",
        if smoke { "smoke" } else { "full" },
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E14.json");
    std::fs::write(path, json).expect("write BENCH_E14.json");
    println!("e14_valuation_shard/acceptance: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
