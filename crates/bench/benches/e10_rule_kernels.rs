//! E10: compiled rule-evaluation kernels — the same verification workload
//! under `RuleEval::Compiled` (join/filter/project plans plus the
//! footprint-keyed step cache) and `RuleEval::Interpreted` (per-step FO
//! re-interpretation), on both the sequential nested-DFS engine and the
//! parallel engine at 2 workers.
//!
//! Two workloads bracket the compiler's range:
//!
//! * `rule_dense_holds`: a 3-relay chain where every peer carries a
//!   phase rotor plus never-firing audit rules with `O(ring³)`-literal
//!   ground guards — ≥4 rules per peer, rule evaluation dominates the
//!   interpreted run. Compiled must be at least 2× faster end-to-end here
//!   (asserted, per the E10 acceptance bar).
//! * `chains_holds`: the plain rule-sparse relay chain — measures the
//!   compiled path's overhead when there is little to win.
//!
//! After the timing groups the acceptance pass re-measures the rule-dense
//! workload, asserts the ≥2× bar per engine and writes the medians plus
//! footprint-cache hit rates to `BENCH_E10.json` at the workspace root.

use ddws::scenarios::chains;
use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::Semantics;
use ddws_verifier::{
    validate_run_report, DatabaseMode, Report, RuleEval, RunReport, Verifier, VerifyOptions,
};
use std::time::Instant;

const ENGINES: [(&str, Option<usize>); 2] = [("seq", None), ("par2", Some(2))];
const RULE_EVALS: [(&str, RuleEval); 2] = [
    ("compiled", RuleEval::Compiled),
    ("interpreted", RuleEval::Interpreted),
];

/// The rule-dense scenario shape: 3 peers (≥3), each with ≥4 rules from
/// the 8-phase rotor plus its audit pair, over a 1-token database.
const PEERS: usize = 3;
const RING: usize = 8;
const TOKENS: usize = 1;

fn opts(
    db: ddws_relational::Instance,
    threads: Option<usize>,
    rule_eval: RuleEval,
) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        threads,
        rule_eval,
        ..VerifyOptions::default()
    }
}

fn check_rule_dense(threads: Option<usize>, rule_eval: RuleEval) -> Report {
    let mut v = Verifier::new(chains::rule_dense_composition(
        PEERS,
        RING,
        true,
        Semantics::default(),
    ));
    let db = chains::database(v.composition_mut(), TOKENS);
    let report = v
        .check_str(
            &chains::prop_integrity(PEERS),
            &opts(db, threads, rule_eval),
        )
        .unwrap();
    assert!(report.outcome.holds());
    report
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_rule_kernels");
    group.sample_size(10);

    for (engine, threads) in ENGINES {
        for (eval_name, rule_eval) in RULE_EVALS {
            group.bench_with_input(
                BenchmarkId::new("rule_dense_holds", format!("{engine}/{eval_name}")),
                &(threads, rule_eval),
                |b, &(threads, rule_eval)| {
                    b.iter(|| check_rule_dense(threads, rule_eval).stats.states_visited)
                },
            );
        }
    }

    for (engine, threads) in ENGINES {
        for (eval_name, rule_eval) in RULE_EVALS {
            group.bench_with_input(
                BenchmarkId::new("chains_holds", format!("{engine}/{eval_name}")),
                &(threads, rule_eval),
                |b, &(threads, rule_eval)| {
                    b.iter(|| {
                        let mut v =
                            Verifier::new(chains::composition(3, true, Semantics::default()));
                        let db = chains::database(v.composition_mut(), 2);
                        let report = v
                            .check_str(&chains::prop_integrity(3), &opts(db, threads, rule_eval))
                            .unwrap();
                        assert!(report.outcome.holds());
                        report.stats.states_visited
                    })
                },
            );
        }
    }

    group.finish();

    acceptance();
}

/// The E10 acceptance bar, measured once outside the timing loops: on the
/// rule-dense chain the compiled kernels must at least halve the
/// end-to-end median wall time on both engines. The medians and the
/// footprint-cache hit rates land in `BENCH_E10.json`.
fn acceptance() {
    let samples = std::env::var("DDWS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let mut rows = Vec::new();
    let mut bench_report: Option<RunReport> = None;
    for (engine, threads) in ENGINES {
        let mut medians = Vec::new();
        let mut hit_rate = 0.0;
        for (_, rule_eval) in RULE_EVALS {
            let mut ns: Vec<u128> = Vec::with_capacity(samples);
            let mut last = None;
            for _ in 0..samples {
                let start = Instant::now();
                let report = check_rule_dense(threads, rule_eval);
                ns.push(start.elapsed().as_nanos());
                last = Some(report);
            }
            ns.sort_unstable();
            medians.push(ns[ns.len() / 2]);
            let report = last.expect("at least one sample");
            let stats = report.stats;
            if let RuleEval::Compiled = rule_eval {
                hit_rate = stats.rule_cache_hits as f64
                    / (stats.rule_cache_hits + stats.rule_cache_misses).max(1) as f64;
                bench_report.get_or_insert(report.telemetry);
            }
        }
        let (compiled, interpreted) = (medians[0], medians[1]);
        let speedup = interpreted as f64 / compiled.max(1) as f64;
        println!(
            "e10_rule_kernels/acceptance/{engine}: compiled={compiled}ns \
             interpreted={interpreted}ns speedup={speedup:.2}x hit_rate={hit_rate:.4}"
        );
        assert!(
            compiled * 2 <= interpreted,
            "{engine}: expected >=2x compiled speedup, got {speedup:.2}x \
             ({compiled}ns vs {interpreted}ns)"
        );
        rows.push(format!(
            "    \"{engine}\": {{\n      \"compiled_median_ns\": {compiled},\n      \
             \"interpreted_median_ns\": {interpreted},\n      \
             \"speedup\": {speedup:.2},\n      \"hit_rate\": {hit_rate:.4}\n    }}"
        ));
    }
    // The bench harness is itself a reporting entry point (DESIGN.md
    // §3.9): relabel one measured run's report, validate it against the
    // schema, and keep it in the artifact.
    let bench_report = RunReport {
        entry_point: "bench".into(),
        ..bench_report.expect("at least one compiled sample")
    };
    let report_json = bench_report.to_json();
    let parsed = ddws_telemetry::Json::parse(&report_json).expect("bench report JSON parses");
    validate_run_report(&parsed).expect("bench report validates against the schema");

    let json = format!(
        "{{\n  \"experiment\": \"e10_rule_kernels\",\n  \"scenario\": {{\n    \
         \"peers\": {PEERS},\n    \"ring\": {RING},\n    \"tokens\": {TOKENS}\n  }},\n  \
         \"samples\": {samples},\n  \"engines\": {{\n{}\n  }},\n  \
         \"run_report\": {report_json}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E10.json");
    std::fs::write(path, json).expect("write BENCH_E10.json");
    println!("e10_rule_kernels/acceptance: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
