//! E6 (ablation): fixed-database verification vs. the lazy all-databases
//! oracle on the same property — the oracle pays for quantifying over
//! every database with active domain inside the verification domain.

use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_bench::{req_resp, unary_db};
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

const PROP: &str = "G (forall x: R.?req(x) -> P.d(x))";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_database_modes");
    group.sample_size(10);

    group.bench_function("fixed_database", |b| {
        b.iter(|| {
            let mut v = Verifier::new(req_resp(true));
            let (db, _) = unary_db(v.composition_mut(), "P.d", 2);
            let opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            };
            v.check_str(PROP, &opts).unwrap().stats
        })
    });

    for fresh in [1usize, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("all_databases_fresh", fresh),
            &fresh,
            |b, &fresh| {
                b.iter(|| {
                    let mut v = Verifier::new(req_resp(true));
                    let opts = VerifyOptions {
                        database: DatabaseMode::AllDatabases,
                        fresh_values: Some(fresh),
                        ..VerifyOptions::default()
                    };
                    v.check_str(PROP, &opts).unwrap().stats
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
