//! E4 (Theorem 5.4): modular verification of an open client against an
//! environment spec, vs. plain verification of the unconstrained client.

use ddws_bench::harness::{criterion_group, criterion_main, Criterion};
use ddws_model::{builder::ENV, CompositionBuilder, QueueKind};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn open_client() -> ddws_model::Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(true);
    b.channel("req", 1, QueueKind::Flat, "P", ENV);
    b.channel("resp", 1, QueueKind::Flat, ENV, "P");
    b.peer("P")
        .database("d", 1)
        .state("got", 1)
        .input("pick", 1)
        .input_rule("pick", &["x"], "d(x)")
        .state_insert_rule("got", &["x"], "?resp(x)")
        .send_rule("req", &["x"], "pick(x)");
    b.build().unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_modular");
    group.sample_size(20);

    group.bench_function("unconstrained_environment", |b| {
        b.iter(|| {
            let mut v = Verifier::new(open_client());
            let mut db = Instance::empty(&v.composition().voc);
            let ok = v.composition_mut().symbols.intern("ok");
            let d = v.composition().voc.lookup("P.d").unwrap();
            db.relation_mut(d).insert(Tuple::new(vec![ok]));
            let opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            };
            v.check_str("G (forall x: P.?resp(x) -> x = \"ok\")", &opts)
                .unwrap()
                .stats
        })
    });

    group.bench_function("with_environment_spec", |b| {
        b.iter(|| {
            let mut v = Verifier::new(open_client());
            let mut db = Instance::empty(&v.composition().voc);
            let ok = v.composition_mut().symbols.intern("ok");
            let d = v.composition().voc.lookup("P.d").unwrap();
            db.relation_mut(d).insert(Tuple::new(vec![ok]));
            let opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            };
            let property = v
                .parse_property("G (forall x: P.?resp(x) -> x = \"ok\")")
                .unwrap();
            let spec = v
                .parse_env_spec("G (forall x: ENV.!resp(x) -> x = \"ok\")")
                .unwrap();
            v.check_modular(&property, &spec, &opts).unwrap().stats
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
