//! E16: chaos overhead — the fault-tolerance tax, measured in virtual
//! time. Two deterministic cells run the *identical* seeded workload
//! (two `starver` tenants plus a compgen fleet) through real
//! [`ClientSession`] retry sessions over a [`ChaosTransport`]: the
//! `clean` cell on a reliable wire, the `chaos` cell under ~1% frame
//! loss plus seeded worker crashes on roughly one slice in 200. Per-job
//! latency is virtual nanoseconds on the server's `ManualClock`
//! (advanced per state expansion), so the p99 ratio between the cells
//! is exactly the retry + crash-re-dispatch overhead — no thread noise,
//! byte-reproducible from the seed.
//!
//! The acceptance pass asserts the robustness contract end to end:
//! every job in both cells drains to a terminal verdict, the chaos cell
//! really absorbed wire faults and worker crashes, and its p99 stays
//! within 50% of the clean cell's. A third `overload` cell submits 2×
//! the admission capacity without retries and asserts the service sheds
//! exactly the overflow, every rejection carrying a `retry_after_ns`
//! back-pressure hint. Everything lands in `BENCH_E16.json` with one
//! chaos-survivor's redacted `RunReport` embedded and schema-validated.

use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_server::{
    decode_response, encode_request, ClientError, ClientSession, CrashInjector, ErrorCode,
    JobOptions, JobSpec, Request, Response, RetryPolicy, Server, ServerConfig, Transport,
};
use ddws_sim::ChaosTransport;
use ddws_testkit::compgen;
use ddws_testkit::contract::silence_injected_panics;
use ddws_testkit::faults::FrameChaos;
use ddws_testkit::rng::XorShift;
use ddws_verifier::{validate_run_report, Clock, ManualClock, RunReport};
use std::sync::Arc;

/// The scheduler quantum. Small, so the starvers fan out into many
/// slices and the 1-in-[`CRASH_IN`] injector has real slices to hit.
const QUANTUM: u64 = 64;

/// Per-job state budget: each starver runs `budget / QUANTUM` slices
/// before `budget_exceeded` — 64 in smoke, 256 in full, so the full
/// cells have enough slices and frames for the 1-in-N fault rates to
/// actually fire.
fn budget(smoke: bool) -> u64 {
    if smoke {
        4_096
    } else {
        16_384
    }
}

/// Chaos-cell frame loss: 1-in-100 frames ≈ 1% (a seeded coin then
/// picks whether the request or the response vanishes).
const DROP_IN: u64 = 100;

/// Chaos-cell crash rate: roughly one slice in 200 panics mid-expansion
/// and is re-dispatched from the last checkpoint.
const CRASH_IN: u64 = 200;

/// Crashed-slice quarantine. Generous: this bench measures the latency
/// tax of *recovered* crashes; poison-job quarantine behavior is proved
/// in `tests/server_sim.rs`.
const QUARANTINE: u64 = 10;

/// Deadlock guard on the step-driven drain loop.
const MAX_STEPS: u64 = 200_000;

/// Starver tenants queued ahead of the fleet in every cell.
const STARVERS: usize = 2;

fn fleet_jobs(smoke: bool) -> usize {
    if smoke {
        6
    } else {
        32
    }
}

/// One measured cell: the seeded workload driven to full drain.
struct CellRun {
    /// Sorted virtual-ns latencies of the fleet jobs (starvers excluded
    /// — their latency measures the budget, not the service).
    latencies_ns: Vec<u64>,
    /// Virtual clock at full drain.
    virtual_wall_ns: u64,
    /// Scheduler steps to full drain.
    steps: u64,
    wire_faults: u64,
    crash_recoveries: u64,
    sample_report: RunReport,
}

/// Drives the seeded workload through retry sessions over `chaos`
/// (plus, when `crash`, the seeded crash injector) until every job is
/// terminal. Job draws come first from a dedicated RNG stream, so the
/// workload is a function of `seed` alone — identical across cells.
fn run_cell(seed: u64, chaos: FrameChaos, crash: bool) -> CellRun {
    let jobs = fleet_jobs(is_smoke());
    let clock = Arc::new(ManualClock::new(0));
    let server = Server::new(ServerConfig {
        capacity: STARVERS + jobs + 4,
        quantum_states: QUANTUM,
        clock: Some(clock.clone()),
        progress_interval: None,
        crash_quarantine: QUARANTINE,
        crash_injector: crash.then(|| Arc::new(CrashInjector::new(seed, CRASH_IN, QUANTUM))),
        ..ServerConfig::default()
    });
    let mut transport = ChaosTransport::new(&server, Some(clock.clone()), chaos, seed);
    let mut session = ClientSession::new(
        seed,
        RetryPolicy {
            max_attempts: 32,
            ..RetryPolicy::default()
        },
    );
    let options = JobOptions {
        budget: budget(is_smoke()),
        ..JobOptions::default()
    };

    // Draw phase: the specs, before any wire traffic, off their own RNG.
    let mut rng = XorShift::new(seed ^ 0x0e16_0e16_0e16_0e16);
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|_| JobSpec::Spec(compgen::spec(&mut rng)))
        .collect();

    // Submit phase: starvers first (they own the round-robin head), then
    // the fleet, each stamped with its submit-time virtual instant. The
    // idempotent sessions absorb lost/duplicated submit frames.
    let mut submitted: Vec<(u64, u64, bool)> = Vec::new(); // (job, start_ns, starver)
    for _ in 0..STARVERS {
        let start = clock.now_ns();
        let job = session
            .submit(
                &mut transport,
                JobSpec::Scenario("starver".to_string()),
                options.clone(),
            )
            .expect("starver admitted");
        submitted.push((job, start, true));
    }
    for spec in specs {
        let start = clock.now_ns();
        let job = session
            .submit(&mut transport, spec, options.clone())
            .expect("fleet job admitted");
        submitted.push((job, start, false));
    }

    // Drain phase: step the scheduler, status-poll one job per step
    // through the same hostile wire (the frame volume the chaos feeds
    // on), and stamp each job's terminal transition off the virtual
    // clock.
    let mut completed: Vec<Option<u64>> = vec![None; submitted.len()];
    let mut poll_id: u64 = 1 << 32;
    let mut steps: u64 = 0;
    while server.has_runnable() {
        assert!(steps < MAX_STEPS, "drain loop exceeded {MAX_STEPS} steps");
        server.step();
        steps += 1;
        let (job, _, _) = submitted[steps as usize % submitted.len()];
        let _ = transport.call(&encode_request(poll_id, &Request::JobStatus { job }));
        poll_id += 1;
        for row in server.jobs() {
            if row.verdict.is_none() {
                continue;
            }
            if let Some(slot) = submitted.iter().position(|&(j, _, _)| j == row.job) {
                completed[slot].get_or_insert(clock.now_ns());
            }
        }
    }

    // Every job is terminal, and every terminal answer is typed: a
    // verdict over the retry wire, or the poisoned/evicted errors (not
    // reachable under this profile's quarantine and retention bounds,
    // but the match is the contract).
    let mut latencies_ns = Vec::with_capacity(submitted.len() - STARVERS);
    for (slot, &(job, start, starver)) in submitted.iter().enumerate() {
        let done = completed[slot].unwrap_or_else(|| panic!("job {job} never terminalized"));
        match session.request(&mut transport, &Request::FetchResult { job }) {
            Ok(Response::Result { verdict, .. }) => {
                let expected: &[&str] = if starver {
                    &["budget_exceeded", "holds"]
                } else {
                    &["holds", "violated", "budget_exceeded"]
                };
                assert!(
                    expected.contains(&verdict.as_str()),
                    "job {job}: {verdict:?}"
                );
            }
            Ok(Response::Error(e))
                if matches!(e.code, ErrorCode::JobPoisoned | ErrorCode::ResultEvicted) => {}
            Ok(other) => panic!("fetch({job}) answered {other:?}"),
            Err(ClientError::Service(e))
                if matches!(e.code, ErrorCode::JobPoisoned | ErrorCode::ResultEvicted) => {}
            Err(e) => panic!("fetch({job}) failed: {e}"),
        }
        if !starver {
            latencies_ns.push(done - start);
        }
    }
    latencies_ns.sort_unstable();

    let rows = server.jobs();
    let crash_recoveries = rows.iter().map(|j| j.crash_recoveries).sum();
    let sample_report = rows
        .iter()
        .find_map(|j| server.redacted_report(j.job))
        .expect("some drained job carries a final report");
    CellRun {
        latencies_ns,
        virtual_wall_ns: clock.now_ns(),
        steps,
        wire_faults: transport.faults,
        crash_recoveries,
        sample_report,
    }
}

/// The overload cell: 2× capacity submitted straight at the wire, no
/// retries. Returns (accepted, shed, rejections carrying a
/// `retry_after_ns` hint).
fn run_overload(capacity: usize) -> (usize, usize, usize) {
    let server = Server::new(ServerConfig {
        capacity,
        quantum_states: QUANTUM,
        clock: Some(Arc::new(ManualClock::new(0))),
        progress_interval: None,
        ..ServerConfig::default()
    });
    let (mut accepted, mut shed, mut hinted) = (0, 0, 0);
    for id in 0..(2 * capacity) as u64 {
        let req = Request::SubmitJob {
            spec: JobSpec::Scenario("req_resp".to_string()),
            options: JobOptions {
                budget: budget(is_smoke()),
                ..JobOptions::default()
            },
            submit_token: None,
        };
        let bytes = server.handle_frame(&encode_request(id, &req));
        let (_, resp, _) = decode_response(&bytes).expect("server frames decode");
        match resp {
            Response::Accepted { .. } => accepted += 1,
            Response::Error(e) if e.code == ErrorCode::QueueFull => {
                shed += 1;
                if e.retry_after_ns.is_some() {
                    hinted += 1;
                }
            }
            other => panic!("submit answered {other:?}"),
        }
    }
    (accepted, shed, hinted)
}

fn is_smoke() -> bool {
    std::env::var("DDWS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn percentile(sorted_ns: &[u64], p: usize) -> u64 {
    assert!(!sorted_ns.is_empty());
    sorted_ns[(sorted_ns.len() - 1) * p / 100]
}

fn bench(c: &mut Criterion) {
    silence_injected_panics();
    let mut group = c.benchmark_group("e16_chaos");
    group.sample_size(10);

    // The timing group measures the wire gauntlet's fixed cost: one
    // status round-trip on the reliable profile vs through the full
    // fault draw (most draws deliver; the delta is the chaos tax per
    // frame).
    let server = Server::new(ServerConfig::deterministic(8, QUANTUM));
    let mut reliable = ChaosTransport::new(&server, None, FrameChaos::OFF, 7);
    group.bench_with_input(BenchmarkId::new("wire", "status_reliable"), &(), |b, ()| {
        b.iter(|| reliable.call(&encode_request(1, &Request::JobStatus { job: 9_999 })))
    });
    let lossy = FrameChaos {
        drop_in: DROP_IN,
        ..FrameChaos::OFF
    };
    let mut hostile = ChaosTransport::new(&server, None, lossy, 7);
    group.bench_with_input(BenchmarkId::new("wire", "status_lossy"), &(), |b, ()| {
        b.iter(|| hostile.call(&encode_request(1, &Request::JobStatus { job: 9_999 })))
    });
    group.finish();

    acceptance();
}

/// The E16 acceptance bar (ISSUE: ≤50% p99 degradation at 1% frame
/// loss + 1-in-200 worker crashes; overload sheds exactly the
/// overflow, every rejection hinted).
fn acceptance() {
    let smoke = is_smoke();
    let samples = std::env::var("DDWS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(if smoke { 1 } else { 3 });

    // Each sample is one seed; clean and chaos share it, so the cells
    // run the identical drawn workload and the p99 ratio is pure
    // fault-tolerance overhead. The reported pair is the worst across
    // samples.
    let mut worst: Option<(u64, CellRun, CellRun)> = None;
    let mut total_faults = 0u64;
    let mut total_recoveries = 0u64;
    for s in 0..samples {
        let seed = 0xe16_0000 + s as u64;
        let clean = run_cell(seed, FrameChaos::OFF, false);
        let chaos = run_cell(
            seed,
            FrameChaos {
                drop_in: DROP_IN,
                ..FrameChaos::OFF
            },
            true,
        );
        assert_eq!(clean.wire_faults, 0, "the reliable wire injected faults");
        assert_eq!(clean.crash_recoveries, 0, "the clean cell crashed");
        let (clean_p99, chaos_p99) = (
            percentile(&clean.latencies_ns, 99),
            percentile(&chaos.latencies_ns, 99),
        );
        // The ISSUE bound, in integer math: chaos_p99 ≤ 1.5 × clean_p99.
        assert!(
            chaos_p99 * 2 <= clean_p99 * 3,
            "seed {seed}: chaos p99 {chaos_p99}ns vs clean {clean_p99}ns — \
             more than 50% degradation"
        );
        total_faults += chaos.wire_faults;
        total_recoveries += chaos.crash_recoveries;
        let degrades = |cl: &CellRun, ch: &CellRun| {
            percentile(&ch.latencies_ns, 99) as f64 / percentile(&cl.latencies_ns, 99) as f64
        };
        if worst
            .as_ref()
            .is_none_or(|(_, cl, ch)| degrades(&clean, &chaos) > degrades(cl, ch))
        {
            worst = Some((seed, clean, chaos));
        }
    }
    // The chaos cells must have actually been hostile — a bound that
    // nothing ever violated is no bound at all. Full mode only: one
    // smoke sample's frame volume leaves a real chance both fault
    // classes stay quiet.
    if !smoke {
        assert!(total_faults > 0, "no frame faults fired across samples");
        assert!(total_recoveries > 0, "no worker crash fired across samples");
    }

    let capacity = 8;
    let (accepted, shed, hinted) = run_overload(capacity);
    assert_eq!(accepted, capacity, "admission under-filled");
    assert_eq!(shed, capacity, "2x overload must shed exactly the overflow");
    assert_eq!(hinted, shed, "a queue_full rejection lacked retry_after_ns");

    let (seed, clean, chaos) = worst.expect("at least one sample");
    let degradation_pct = 100.0
        * (percentile(&chaos.latencies_ns, 99) as f64 / percentile(&clean.latencies_ns, 99) as f64
            - 1.0);
    println!(
        "e16_chaos/acceptance: seed {seed}: clean p99={}ns chaos p99={}ns \
         ({degradation_pct:+.1}%) faults={} recoveries={} shed={shed}/{}",
        percentile(&clean.latencies_ns, 99),
        percentile(&chaos.latencies_ns, 99),
        chaos.wire_faults,
        chaos.crash_recoveries,
        2 * capacity,
    );

    // The bench harness is itself a reporting entry point (DESIGN.md
    // §3.9): the embedded report is one the chaos cell served *through*
    // the faults, relabelled and schema-validated.
    let bench_report = RunReport {
        entry_point: "bench".into(),
        ..chaos.sample_report.clone()
    };
    let report_json = bench_report.to_json();
    let parsed = ddws_telemetry::Json::parse(&report_json).expect("bench report JSON parses");
    validate_run_report(&parsed).expect("bench report validates against the schema");

    let cell_json = |run: &CellRun| {
        format!(
            "{{\n      \"jobs\": {},\n      \"virtual_wall_ns\": {},\n      \
             \"steps\": {},\n      \"p50_ns\": {},\n      \"p99_ns\": {},\n      \
             \"wire_faults\": {},\n      \"crash_recoveries\": {}\n    }}",
            run.latencies_ns.len(),
            run.virtual_wall_ns,
            run.steps,
            percentile(&run.latencies_ns, 50),
            percentile(&run.latencies_ns, 99),
            run.wire_faults,
            run.crash_recoveries,
        )
    };
    let json = format!(
        "{{\n  \"experiment\": \"e16_chaos\",\n  \"mode\": \"{}\",\n  \
         \"samples\": {samples},\n  \"seed\": {seed},\n  \
         \"quantum_states\": {QUANTUM},\n  \"job_budget\": {},\n  \
         \"chaos_profile\": {{ \"drop_in\": {DROP_IN}, \"crash_in\": {CRASH_IN} }},\n  \
         \"cells\": {{\n    \"clean\": {},\n    \"chaos\": {},\n    \
         \"overload\": {{\n      \"capacity\": {capacity},\n      \"submitted\": {},\n      \
         \"accepted\": {accepted},\n      \"shed\": {shed},\n      \
         \"shed_rate\": {:.2},\n      \"retry_after_hints\": {hinted}\n    }}\n  }},\n  \
         \"p99_degradation_pct\": {degradation_pct:.2},\n  \
         \"run_report\": {report_json}\n}}\n",
        if smoke { "smoke" } else { "full" },
        budget(smoke),
        cell_json(&clean),
        cell_json(&chaos),
        2 * capacity,
        shed as f64 / (2 * capacity) as f64,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E16.json");
    std::fs::write(path, json).expect("write BENCH_E16.json");
    println!("e16_chaos/acceptance: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
