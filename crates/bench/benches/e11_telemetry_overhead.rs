//! E11: telemetry overhead — the rule-dense E10 workload re-measured under
//! three reporter configurations:
//!
//! * `off`: [`Silent`] reporter with the progress gate disabled
//!   (`progress_interval: None`) — the pre-telemetry hot path: counters
//!   are worker-local and no gate is ever consulted;
//! * `silent`: the shipping default — [`Silent`] reporter behind the 1 s
//!   progress gate. The hot-path cost is one coarse stride mask plus a
//!   relaxed atomic load per ~1024 expansions;
//! * `jsonl`: a [`JsonLinesReporter`] draining to [`std::io::sink`] with a
//!   50 ms gate — the full emission cost with snapshots actually rendered.
//!
//! The acceptance bar (DESIGN.md §3.9): the `silent` default costs at most
//! 5% wall time over `off` on the rule-dense scenario, on both engines.
//! Samples for the two configurations are interleaved so clock drift hits
//! both equally, and a small absolute allowance absorbs timer noise on top
//! of the relative bar. Medians land in `BENCH_E11.json` together with a
//! schema-validated `RunReport` for the bench entry point itself.

use ddws::scenarios::chains;
use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::Semantics;
use ddws_verifier::{
    validate_run_report, DatabaseMode, JsonLinesReporter, Report, ReporterHandle, RunReport,
    Verifier, VerifyOptions,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ENGINES: [(&str, Option<usize>, Option<usize>); 3] = [
    ("seq", None, None),
    ("par2", Some(2), None),
    ("vt2", None, Some(2)),
];

/// The rule-dense scenario shape, matching E10.
const PEERS: usize = 3;
const RING: usize = 8;
const TOKENS: usize = 1;

/// Absolute noise allowance on top of the 5% relative bar: the workload
/// runs for hundreds of milliseconds, so 10 ms is well under the bar
/// itself but absorbs scheduler jitter between interleaved samples.
const NOISE_NS: u128 = 10_000_000;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Config {
    Off,
    Silent,
    JsonLines,
}

fn options(
    db: ddws_relational::Instance,
    threads: Option<usize>,
    valuation_threads: Option<usize>,
    config: Config,
) -> VerifyOptions {
    let mut opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        threads,
        valuation_threads,
        ..VerifyOptions::default()
    };
    match config {
        Config::Off => opts.progress_interval = None,
        Config::Silent => {}
        Config::JsonLines => {
            opts.reporter = ReporterHandle::new(Arc::new(JsonLinesReporter::to_writer(Box::new(
                std::io::sink(),
            ))));
            opts.progress_interval = Some(Duration::from_millis(50));
        }
    }
    opts
}

fn check_rule_dense(
    threads: Option<usize>,
    valuation_threads: Option<usize>,
    config: Config,
) -> Report {
    let mut v = Verifier::new(chains::rule_dense_composition(
        PEERS,
        RING,
        true,
        Semantics::default(),
    ));
    let db = chains::database(v.composition_mut(), TOKENS);
    let report = v
        .check_str(
            &chains::prop_integrity(PEERS),
            &options(db, threads, valuation_threads, config),
        )
        .unwrap();
    assert!(report.outcome.holds());
    report
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_telemetry_overhead");
    group.sample_size(10);

    for (engine, threads, vt) in ENGINES {
        for (label, config) in [
            ("off", Config::Off),
            ("silent", Config::Silent),
            ("jsonl", Config::JsonLines),
        ] {
            group.bench_with_input(
                BenchmarkId::new("rule_dense_holds", format!("{engine}/{label}")),
                &(threads, vt, config),
                |b, &(threads, vt, config)| {
                    b.iter(|| check_rule_dense(threads, vt, config).stats.states_visited)
                },
            );
        }
    }

    group.finish();

    acceptance();
}

/// The E11 acceptance bar, measured once outside the timing loops with
/// `off`/`silent` samples interleaved.
fn acceptance() {
    let samples = std::env::var("DDWS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let mut rows = Vec::new();
    let mut bench_report: Option<RunReport> = None;
    for (engine, threads, vt) in ENGINES {
        let mut off_ns: Vec<u128> = Vec::with_capacity(samples);
        let mut silent_ns: Vec<u128> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            std::hint::black_box(check_rule_dense(threads, vt, Config::Off));
            off_ns.push(start.elapsed().as_nanos());

            let start = Instant::now();
            let report = check_rule_dense(threads, vt, Config::Silent);
            silent_ns.push(start.elapsed().as_nanos());
            bench_report.get_or_insert(report.telemetry);
        }
        off_ns.sort_unstable();
        silent_ns.sort_unstable();
        let (off, silent) = (off_ns[off_ns.len() / 2], silent_ns[silent_ns.len() / 2]);
        let overhead = silent as f64 / off.max(1) as f64 - 1.0;
        println!(
            "e11_telemetry_overhead/acceptance/{engine}: off={off}ns \
             silent={silent}ns overhead={:.2}%",
            overhead * 100.0
        );
        assert!(
            silent <= off + off / 20 + NOISE_NS,
            "{engine}: silent-reporter telemetry must cost <=5% (+noise), \
             got {:.2}% ({silent}ns vs {off}ns)",
            overhead * 100.0
        );
        rows.push(format!(
            "    \"{engine}\": {{\n      \"off_median_ns\": {off},\n      \
             \"silent_median_ns\": {silent},\n      \
             \"overhead\": {overhead:.4}\n    }}"
        ));
    }

    // The bench harness is itself a reporting entry point: relabel one
    // measured run's report and validate it against the schema before it
    // lands in the artifact.
    let bench_report = RunReport {
        entry_point: "bench".into(),
        ..bench_report.expect("at least one silent sample")
    };
    let json = bench_report.to_json();
    let parsed = ddws_telemetry::Json::parse(&json).expect("bench report JSON parses");
    validate_run_report(&parsed).expect("bench report validates against the schema");

    let out = format!(
        "{{\n  \"experiment\": \"e11_telemetry_overhead\",\n  \"scenario\": {{\n    \
         \"peers\": {PEERS},\n    \"ring\": {RING},\n    \"tokens\": {TOKENS}\n  }},\n  \
         \"samples\": {samples},\n  \"engines\": {{\n{}\n  }},\n  \
         \"run_report\": {json}\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E11.json");
    std::fs::write(path, out).expect("write BENCH_E11.json");
    println!("e11_telemetry_overhead/acceptance: wrote {path}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
