//! E1 (Theorem 3.4): verification cost of the bank-loan composition as the
//! verification domain grows — the PSPACE procedure's dominant axis.

use ddws::scenarios::bank_loan;
use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::Semantics;
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_domain_scaling");
    group.sample_size(10);
    // Growth is steep (EXPERIMENTS.md): one customer verifies in ~75 ms,
    // two in ~4 s; three already takes minutes per iteration, so the bench
    // stops at two and prints the states for three once instead.
    for customers in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(customers),
            &customers,
            |b, &n| {
                b.iter(|| {
                    let sem = Semantics {
                        nested_send_skips_empty: true,
                        ..Semantics::default()
                    };
                    let mut v = Verifier::new(bank_loan::composition(true, sem));
                    // n customers with ratings.
                    let comp = v.composition_mut();
                    let mut db = ddws_relational::Instance::empty(&comp.voc);
                    for i in 0..n {
                        let c1 = comp.symbols.intern(&format!("c{i}"));
                        let s1 = comp.symbols.intern(&format!("s{i}"));
                        let nm = comp.symbols.intern(&format!("n{i}"));
                        let loan = comp.symbols.intern("loan");
                        let fair = comp.symbols.intern("fair");
                        for (rel, t) in [
                            ("A.wants", vec![c1, loan]),
                            ("O.customer", vec![c1, s1, nm]),
                            ("CR.creditRating", vec![s1, fair]),
                        ] {
                            let id = comp.voc.lookup(rel).unwrap();
                            db.relation_mut(id)
                                .insert(ddws_relational::Tuple::from(t.as_slice()));
                        }
                    }
                    let opts = VerifyOptions {
                        database: DatabaseMode::Fixed(db),
                        fresh_values: Some(1),
                        ..VerifyOptions::default()
                    };
                    let report = v
                        .check_str(bank_loan::PROP_RATINGS_REFLECT_DB, &opts)
                        .unwrap();
                    assert!(report.outcome.holds());
                    report.stats.states_visited
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
