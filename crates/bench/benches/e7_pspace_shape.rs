//! E7 (complexity shape): verification cost against relay-chain length —
//! the state space (and thus exhaustive-search time) grows exponentially
//! in the number of peers, while each snapshot stays polynomial (the
//! PSPACE signature of Theorem 3.4).

use ddws::scenarios::chains;
use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::Semantics;
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pspace_shape");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut v = Verifier::new(chains::composition(n, true, Semantics::default()));
                let db = chains::database(v.composition_mut(), 1);
                let opts = VerifyOptions {
                    database: DatabaseMode::Fixed(db),
                    fresh_values: Some(1),
                    ..VerifyOptions::default()
                };
                let report = v.check_str(&chains::prop_integrity(n), &opts).unwrap();
                assert!(report.outcome.holds());
                report.stats.states_visited
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
