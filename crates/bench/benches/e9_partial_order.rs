//! E9: ample-set partial-order reduction — the same verification workload
//! under `Reduction::Full` and `Reduction::Ample`, on both the sequential
//! nested-DFS engine and the parallel engine at 2 workers.
//!
//! Three workloads span the reduction's range:
//!
//! * `auditor_chain_holds`: a 3-relay chain plus a channel-free auditor
//!   rotating through 6 phases — the statically independent mover the
//!   reduction is built for. Ample must visit at most half of Full's
//!   states here (asserted, per the E9 acceptance bar).
//! * `chains_holds`: all peers channel-coupled, so ample sets mostly
//!   degrade to full expansion — measures the oracle's overhead when
//!   there is nothing to prune.
//! * `bank_violated`: a counterexample exists; verdicts must agree and
//!   the lasso must replay, whatever the reduction prunes.

use ddws::scenarios::{bank_loan, chains};
use ddws_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddws_model::Semantics;
use ddws_verifier::{DatabaseMode, Reduction, Verifier, VerifyOptions};

const ENGINES: [(&str, Option<usize>); 2] = [("seq", None), ("par2", Some(2))];
const REDUCTIONS: [(&str, Reduction); 2] = [("full", Reduction::Full), ("ample", Reduction::Ample)];

fn opts(
    db: ddws_relational::Instance,
    threads: Option<usize>,
    reduction: Reduction,
) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        threads,
        reduction,
        ..VerifyOptions::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_partial_order");
    group.sample_size(10);

    for (engine, threads) in ENGINES {
        for (red_name, reduction) in REDUCTIONS {
            group.bench_with_input(
                BenchmarkId::new("auditor_chain_holds", format!("{engine}/{red_name}")),
                &(threads, reduction),
                |b, &(threads, reduction)| {
                    b.iter(|| {
                        let mut v = Verifier::new(chains::composition_with_auditor(
                            3,
                            6,
                            true,
                            Semantics::default(),
                        ));
                        let db = chains::database(v.composition_mut(), 1);
                        let report = v
                            .check_str(&chains::prop_integrity(3), &opts(db, threads, reduction))
                            .unwrap();
                        assert!(report.outcome.holds());
                        report.stats.states_visited
                    })
                },
            );
        }
    }

    for (engine, threads) in ENGINES {
        for (red_name, reduction) in REDUCTIONS {
            group.bench_with_input(
                BenchmarkId::new("chains_holds", format!("{engine}/{red_name}")),
                &(threads, reduction),
                |b, &(threads, reduction)| {
                    b.iter(|| {
                        let mut v =
                            Verifier::new(chains::composition(3, true, Semantics::default()));
                        let db = chains::database(v.composition_mut(), 2);
                        let report = v
                            .check_str(&chains::prop_integrity(3), &opts(db, threads, reduction))
                            .unwrap();
                        assert!(report.outcome.holds());
                        report.stats.states_visited
                    })
                },
            );
        }
    }

    for (engine, threads) in ENGINES {
        for (red_name, reduction) in REDUCTIONS {
            group.bench_with_input(
                BenchmarkId::new("bank_violated", format!("{engine}/{red_name}")),
                &(threads, reduction),
                |b, &(threads, reduction)| {
                    b.iter(|| {
                        let sem = Semantics {
                            nested_send_skips_empty: true,
                            ..Semantics::default()
                        };
                        let mut v = Verifier::new(bank_loan::composition(true, sem));
                        let db = bank_loan::demo_database(v.composition_mut());
                        let report = v
                            .check_str(
                                bank_loan::PROP_NO_RATING_EVER,
                                &opts(db, threads, reduction),
                            )
                            .unwrap();
                        assert!(!report.outcome.holds());
                        report.stats.states_visited
                    })
                },
            );
        }
    }

    group.finish();

    // The E9 acceptance bar, checked once outside the timing loops: on the
    // auditor chain the reduction must at least halve the visited states.
    for (engine, threads) in ENGINES {
        let states = |reduction| {
            let mut v = Verifier::new(chains::composition_with_auditor(
                3,
                6,
                true,
                Semantics::default(),
            ));
            let db = chains::database(v.composition_mut(), 1);
            let report = v
                .check_str(&chains::prop_integrity(3), &opts(db, threads, reduction))
                .unwrap();
            assert!(report.outcome.holds());
            report.stats.states_visited
        };
        let (full, ample) = (states(Reduction::Full), states(Reduction::Ample));
        assert!(
            ample * 2 <= full,
            "{engine}: expected >=2x reduction, got {ample} vs {full}"
        );
        println!("e9_partial_order/acceptance/{engine}: full={full} ample={ample} states");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
