//! A minimal, dependency-free JSON value with an order-preserving object
//! representation.
//!
//! The workspace builds offline with no serde available, and run reports
//! must serialize with a *stable field order* so differential tests can
//! byte-compare them. Objects are therefore `Vec<(String, Json)>` in
//! insertion order, and `Display` emits compact JSON with no reordering.

use std::fmt;

/// A JSON value. Numbers are split into unsigned integers (the common case
/// for counters — emitted without a decimal point) and floats.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, emitted exactly (counters, timers).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (floats with an
    /// exact non-negative integral value also qualify — parsers on other
    /// stacks do not distinguish `1` from `1.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document (a single value with optional surrounding
    /// whitespace).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let src = r#"{"a":1,"b":[true,null,"x\"y"],"c":{"d":2.5,"e":"line\nbreak"}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("c").and_then(|c| c.get("e")).and_then(Json::as_str),
            Some("line\nbreak")
        );
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = Json::Object(vec![
            ("z".to_string(), Json::UInt(1)),
            ("a".to_string(), Json::UInt(2)),
        ]);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }

    #[test]
    fn large_counters_survive_exactly() {
        let n = u64::MAX;
        let v = Json::parse(&format!("{{\"n\":{n}}}")).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(n));
    }
}
