//! Run-control primitives shared by the engines and the verifier: the
//! cooperative [`CancelToken`], the [`AbortReason`] taxonomy every
//! inconclusive stop is classified under, and the test-only [`FaultHook`]
//! the deterministic fault injector uses.
//!
//! These live here (rather than in `ddws-automata`) for the same reason
//! [`SearchStats`](crate::SearchStats) does: this crate is the dependency-
//! free leaf every other crate can use without cycles, and the abort
//! reason also appears verbatim in the run report's `abort` object.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A shared, clonable cancellation flag with an attached reason.
///
/// Cancellation is *cooperative*: [`CancelToken::cancel`] only raises a
/// flag; the search engines poll it (one relaxed atomic load per expanded
/// state — the same cost as the parallel engine's budget flag) and wind
/// down at the next check point, reporting
/// [`AbortReason::Cancelled`] with the first reason recorded.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    flag: AtomicBool,
    reason: Mutex<Option<String>>,
    /// Parent link for scoped child tokens (see [`CancelToken::child`]).
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A scoped child token: cancelling the child does *not* cancel the
    /// parent, but a cancelled parent is observed through the child. The
    /// valuation scheduler hands each shard task a child of the caller's
    /// token so a first-violation cancel can stop the losing shards
    /// without raising the caller-visible flag.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                reason: Mutex::new(None),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Raises the flag. The first caller's `reason` wins; later calls keep
    /// the flag raised but do not overwrite the reason.
    pub fn cancel(&self, reason: impl Into<String>) {
        // Poisoning is survivable here: the slot only ever holds a String.
        let mut slot = self
            .inner
            .reason
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if slot.is_none() {
            *slot = Some(reason.into());
        }
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Whether the token (or any ancestor, for child tokens) has been
    /// cancelled. One relaxed load per link — safe to call on a search
    /// hot path; the chain is one deep in practice.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        match &self.inner.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }

    /// The recorded cancellation reason, if any: this token's own reason
    /// if set, otherwise the nearest cancelled ancestor's.
    pub fn reason(&self) -> Option<String> {
        let own = self
            .inner
            .reason
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone();
        match (own, &self.inner.parent) {
            (Some(reason), _) => Some(reason),
            (None, Some(parent)) => parent.reason(),
            (None, None) => None,
        }
    }
}

/// Why a search stopped without reaching a verdict.
///
/// Every variant maps to one outcome label in the run report (see
/// [`AbortReason::label`]) and to one `abort` object; the engines guarantee
/// that any of these stops is *graceful* — partial statistics are merged,
/// exactly one report is emitted, and no worker is left running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbortReason {
    /// The visited-state budget was exhausted.
    StateBudget {
        /// The configured cap that tripped.
        max_states: u64,
    },
    /// The wall-clock deadline passed (checked on the engines' ~1024-state
    /// progress stride, so the overshoot is bounded by one stride of work).
    DeadlineExceeded {
        /// The configured wall-clock budget, in nanoseconds.
        limit_ns: u64,
    },
    /// A [`CancelToken`] was cancelled externally.
    Cancelled {
        /// The reason recorded by the first `cancel` call.
        reason: String,
    },
    /// A worker panicked; surviving workers drained and merged their stats.
    WorkerPanicked {
        /// Index of the panicking worker (0 for the sequential engine).
        worker: usize,
        /// The panic payload, stringified.
        payload: String,
    },
}

impl AbortReason {
    /// The run-report outcome label for this reason — one of
    /// `"budget_exceeded"`, `"deadline_exceeded"`, `"cancelled"`,
    /// `"worker_panicked"`.
    pub fn label(&self) -> &'static str {
        match self {
            AbortReason::StateBudget { .. } => "budget_exceeded",
            AbortReason::DeadlineExceeded { .. } => "deadline_exceeded",
            AbortReason::Cancelled { .. } => "cancelled",
            AbortReason::WorkerPanicked { .. } => "worker_panicked",
        }
    }

    /// The exhausted budget, in the unit native to the reason: states for
    /// [`AbortReason::StateBudget`], nanoseconds for
    /// [`AbortReason::DeadlineExceeded`], 0 otherwise (nothing was
    /// budgeted — the stop was externally imposed).
    pub fn budget(&self) -> u64 {
        match self {
            AbortReason::StateBudget { max_states } => *max_states,
            AbortReason::DeadlineExceeded { limit_ns } => *limit_ns,
            AbortReason::Cancelled { .. } | AbortReason::WorkerPanicked { .. } => 0,
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::StateBudget { max_states } => {
                write!(f, "state budget exhausted (max_states = {max_states})")
            }
            AbortReason::DeadlineExceeded { limit_ns } => {
                write!(f, "deadline exceeded (limit = {limit_ns} ns)")
            }
            AbortReason::Cancelled { reason } => write!(f, "cancelled: {reason}"),
            AbortReason::WorkerPanicked { worker, payload } => {
                write!(f, "worker {worker} panicked: {payload}")
            }
        }
    }
}

/// A test-only fault-injection hook: called once per state expansion with
/// the 1-based expansion ordinal (globally ordered across parallel
/// workers). The hook may panic (exercising the engines' panic isolation)
/// or cancel a captured [`CancelToken`]; production options leave it
/// `None`, which costs one branch per expansion.
pub type FaultHook = Arc<dyn Fn(u64) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cancel_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel("first");
        t.cancel("second");
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("first"));
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel("via clone");
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("via clone"));
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        assert!(!child.is_cancelled());
        child.cancel("shard superseded");
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must stay scoped");
        assert_eq!(child.reason().as_deref(), Some("shard superseded"));
        assert_eq!(parent.reason(), None);

        let parent = CancelToken::new();
        let child = parent.child();
        parent.cancel("caller abort");
        assert!(child.is_cancelled(), "parent cancel flows to children");
        assert_eq!(child.reason().as_deref(), Some("caller abort"));
    }

    #[test]
    fn child_own_reason_shadows_parent() {
        let parent = CancelToken::new();
        let child = parent.child();
        child.cancel("mine");
        parent.cancel("theirs");
        assert_eq!(child.reason().as_deref(), Some("mine"));
    }

    #[test]
    fn labels_and_budgets_follow_the_schema() {
        let r = AbortReason::StateBudget { max_states: 7 };
        assert_eq!(r.label(), "budget_exceeded");
        assert_eq!(r.budget(), 7);
        let r = AbortReason::DeadlineExceeded { limit_ns: 9 };
        assert_eq!(r.label(), "deadline_exceeded");
        assert_eq!(r.budget(), 9);
        let r = AbortReason::Cancelled {
            reason: "user".into(),
        };
        assert_eq!(r.label(), "cancelled");
        assert_eq!(r.budget(), 0);
        let r = AbortReason::WorkerPanicked {
            worker: 3,
            payload: "boom".into(),
        };
        assert_eq!(r.label(), "worker_panicked");
        assert_eq!(r.budget(), 0);
    }
}
