//! The per-run counter block shared by every search engine.
//!
//! `SearchStats` used to live in `ddws-automata`; it moved here so the
//! merge semantics (`absorb`) are defined once for sequential searches,
//! parallel worker shards, and per-valuation accumulation in the verifier.
//! `ddws_automata::SearchStats` re-exports this type as a compatibility
//! shim.

/// Counters and phase timers describing one product-graph search.
///
/// Engines keep these as plain (non-atomic) per-worker values and merge
/// them at join with [`SearchStats::absorb`]. The counter families:
///
/// * **Traversal** — `states_visited`, `transitions_explored`,
///   `states_expanded`. A state is *expanded* each time an engine computes
///   its successor list (the sequential nested DFS expands in both the blue
///   and red passes; the parallel engine expands once per dequeued state).
/// * **Reduction accounting** — `ample_hits` counts expansions answered
///   from a proper ample subset, `full_expansions` counts expansions that
///   fell back to the full successor set. When ample-set reduction is
///   active, `ample_hits + full_expansions == states_expanded`; when it is
///   inactive both are zero.
/// * **Rule evaluation** — `rule_evals` counts metered rule evaluations;
///   `rule_cache_hits + rule_cache_misses == rule_evals` whenever the
///   footprint cache is metering (both engines meter by default).
/// * **State interning** — `intern_calls`, `intern_hits`, `intern_misses`
///   meter the compact representation's hash-cons tables (extension pool
///   plus the configuration interner); `intern_hits + intern_misses ==
///   intern_calls` always, and all three are zero under the legacy
///   representation.
/// * **Phase timers** — nanosecond spans for boot enumeration
///   (`boot_ns`), successor generation (`successor_ns`), rule evaluation
///   inside successor generation (`rule_eval_ns`), and SCC/lasso
///   extraction (`lasso_ns`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct states inserted into the visited set.
    pub states_visited: u64,
    /// Product transitions traversed (successor edges considered).
    pub transitions_explored: u64,
    /// Successor-list computations (see the type-level docs for exactly
    /// when an engine counts an expansion).
    pub states_expanded: u64,
    /// Expansions answered from a proper ample subset.
    pub ample_hits: u64,
    /// Expansions that used the full successor set while reduction was
    /// active (C3 proviso hits, singleton ample sets, and red-search
    /// re-expansions).
    pub full_expansions: u64,
    /// Metered rule evaluations (compiled or interpreted).
    pub rule_evals: u64,
    /// Footprint-cache hits during rule evaluation.
    pub rule_cache_hits: u64,
    /// Footprint-cache misses (including unmemoizable evaluations).
    pub rule_cache_misses: u64,
    /// Hash-cons intern calls under the compact state representation
    /// (zero under the legacy representation).
    pub intern_calls: u64,
    /// Intern calls answered from the tables.
    pub intern_hits: u64,
    /// Intern calls that created fresh entries.
    pub intern_misses: u64,
    /// Grounded-NBA cache lookups answered from the cache (a valuation
    /// whose grounded LTL shape was already translated). Zero for entry
    /// points that translate no property automaton.
    pub nba_cache_hits: u64,
    /// Grounded-NBA cache lookups that ran `ltl_to_nba`; equals the number
    /// of distinct grounded formula shapes, independent of shard schedule.
    pub nba_cache_misses: u64,
    /// Nanoseconds spent evaluating rules (inside boot + successor spans).
    pub rule_eval_ns: u64,
    /// Nanoseconds spent enumerating initial (boot) configurations.
    pub boot_ns: u64,
    /// Nanoseconds spent generating successor configurations (includes
    /// rule evaluation; `successor_ns - rule_eval_ns` approximates queue
    /// bookkeeping).
    pub successor_ns: u64,
    /// Nanoseconds spent in SCC/lasso extraction (the sequential red
    /// search, or the parallel post-pass over the edge relation).
    pub lasso_ns: u64,
    /// Whether any contributing search aborted on its state budget.
    pub truncated: bool,
}

impl SearchStats {
    /// Merges `other` into `self`: counters and timers add, `truncated`
    /// ORs. This is the single definition of shard/valuation merging used
    /// by the parallel engine's join and the verifier's per-valuation
    /// accumulation.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.states_visited += other.states_visited;
        self.transitions_explored += other.transitions_explored;
        self.states_expanded += other.states_expanded;
        self.ample_hits += other.ample_hits;
        self.full_expansions += other.full_expansions;
        self.rule_evals += other.rule_evals;
        self.rule_cache_hits += other.rule_cache_hits;
        self.rule_cache_misses += other.rule_cache_misses;
        self.intern_calls += other.intern_calls;
        self.intern_hits += other.intern_hits;
        self.intern_misses += other.intern_misses;
        self.nba_cache_hits += other.nba_cache_hits;
        self.nba_cache_misses += other.nba_cache_misses;
        self.rule_eval_ns += other.rule_eval_ns;
        self.boot_ns += other.boot_ns;
        self.successor_ns += other.successor_ns;
        self.lasso_ns += other.lasso_ns;
        self.truncated |= other.truncated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_ors_truncated() {
        let mut a = SearchStats {
            states_visited: 1,
            transitions_explored: 2,
            states_expanded: 3,
            ample_hits: 4,
            full_expansions: 5,
            rule_evals: 6,
            rule_cache_hits: 7,
            rule_cache_misses: 8,
            intern_calls: 13,
            intern_hits: 14,
            intern_misses: 15,
            nba_cache_hits: 16,
            nba_cache_misses: 17,
            rule_eval_ns: 9,
            boot_ns: 10,
            successor_ns: 11,
            lasso_ns: 12,
            truncated: false,
        };
        let b = SearchStats {
            states_visited: 100,
            transitions_explored: 200,
            states_expanded: 300,
            ample_hits: 400,
            full_expansions: 500,
            rule_evals: 600,
            rule_cache_hits: 700,
            rule_cache_misses: 800,
            intern_calls: 1300,
            intern_hits: 1400,
            intern_misses: 1500,
            nba_cache_hits: 1600,
            nba_cache_misses: 1700,
            rule_eval_ns: 900,
            boot_ns: 1000,
            successor_ns: 1100,
            lasso_ns: 1200,
            truncated: true,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            SearchStats {
                states_visited: 101,
                transitions_explored: 202,
                states_expanded: 303,
                ample_hits: 404,
                full_expansions: 505,
                rule_evals: 606,
                rule_cache_hits: 707,
                rule_cache_misses: 808,
                intern_calls: 1313,
                intern_hits: 1414,
                intern_misses: 1515,
                nba_cache_hits: 1616,
                nba_cache_misses: 1717,
                rule_eval_ns: 909,
                boot_ns: 1010,
                successor_ns: 1111,
                lasso_ns: 1212,
                truncated: true,
            }
        );
        // Truncation is sticky in either direction.
        let mut c = SearchStats {
            truncated: true,
            ..SearchStats::default()
        };
        c.absorb(&SearchStats::default());
        assert!(c.truncated);
    }
}
