//! Search telemetry for the DDWS verifier.
//!
//! The verifier's engines (sequential nested DFS, parallel work-stealing
//! reachability, reduced successor generation, compiled and interpreted rule
//! evaluation) all funnel their observability through this crate:
//!
//! * [`SearchStats`] — the per-run counter block. Workers keep plain local
//!   counters and merge them at join via [`SearchStats::absorb`]; there are
//!   no hot-path atomics in the engines themselves.
//! * [`RunReport`] — the final machine-readable artifact of a verification
//!   run (stable, versioned JSON schema; see [`report::SCHEMA_NAME`]).
//! * [`Reporter`] — the sink trait, with [`Silent`], human-readable
//!   ([`HumanReporter`]) and JSON-lines ([`JsonLinesReporter`])
//!   implementations, plus an in-memory [`BufferReporter`] for tests.
//! * [`Progress`] / [`ProgressGate`] — periodic progress snapshots
//!   (states/sec, frontier size, depth, ample/full ratio, rule-cache hit
//!   rate) throttled by a lock-free time gate.
//! * [`EngineTelemetry`] — the bundle of references an engine threads
//!   through its search loop.
//! * [`CancelToken`] / [`AbortReason`] — the run-control layer: cooperative
//!   cancellation, the taxonomy of graceful stops, and the test-only
//!   [`FaultHook`] the deterministic fault injector uses.
//!
//! The crate is dependency-free on purpose: every other crate in the
//! workspace can use it without cycles.

#![warn(missing_docs)]

pub mod control;
pub mod json;
pub mod report;
pub mod reporter;
pub mod stats;

pub use control::{AbortReason, CancelToken, FaultHook};
pub use json::Json;
pub use report::{
    validate_run_report, Abort, Counters, PhaseTimes, RunReport, MIN_SCHEMA_VERSION, SCHEMA_NAME,
    SCHEMA_VERSION,
};
pub use reporter::{
    BufferReporter, EngineTelemetry, HumanReporter, JsonLinesReporter, Progress, ProgressGate,
    Reporter, ReporterHandle, RuleMeterSource, Silent, StreamReporter, TelemetryEvent, SILENT,
};
pub use stats::SearchStats;
