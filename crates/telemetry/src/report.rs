//! The final, versioned run report every verify entry point emits.
//!
//! # Schema and versioning policy
//!
//! A report is a single JSON object whose first two fields identify it:
//! `"schema": "ddws.run-report"` and `"version": 2`. Within a version the
//! field set and serialization order are frozen, so two reports from runs
//! with identical non-timing behaviour are byte-identical after
//! [`RunReport::redacted`]. Additive changes (new counters, new phases)
//! bump the version; consumers should accept any version they know and
//! reject unknown schema names. [`validate_run_report`] checks a parsed
//! document against every version this crate understands.
//!
//! **Version history.** v1 froze the field set through `phases` with the
//! outcome vocabulary `holds | violated | budget_exceeded`. v2 adds an
//! optional `abort` object (`reason`, `budget`, `spent`, `resumable`) —
//! present exactly when the run stopped without a verdict — and widens the
//! outcome vocabulary with `deadline_exceeded`, `cancelled` and
//! `worker_panicked`. v3 adds the grounded-NBA cache counters
//! (`nba_cache_hits`, `nba_cache_misses`) introduced by valuation-level
//! sharding, and widens [`RunReport::redacted`] to also zero the cache
//! meters (rule and NBA), which are schedule-dependent when superseded
//! shards contribute partial work. v4 adds the `crash_recoveries`
//! counter: how many crashed scheduler slices the serving layer absorbed
//! and re-dispatched from a parked checkpoint before this report's run
//! finished (0 for direct, unserved runs). [`RunReport::from_json`] still
//! accepts v1–v3 documents (their `abort` / NBA counters /
//! `crash_recoveries` default to `None` / 0 / 0).

use crate::control::AbortReason;
use crate::json::Json;
use crate::stats::SearchStats;

/// The schema identifier every run report carries.
pub const SCHEMA_NAME: &str = "ddws.run-report";
/// The current schema version (frozen field set; bump on change).
pub const SCHEMA_VERSION: u64 = 4;
/// The oldest schema version [`RunReport::from_json`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Verdict-relevant counters, copied out of [`SearchStats`] at the end of
/// a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Distinct states inserted into the visited set.
    pub states_visited: u64,
    /// Product transitions traversed.
    pub transitions_explored: u64,
    /// Successor-list computations.
    pub states_expanded: u64,
    /// Expansions answered from a proper ample subset.
    pub ample_hits: u64,
    /// Expansions using the full successor set under active reduction.
    pub full_expansions: u64,
    /// Metered rule evaluations.
    pub rule_evals: u64,
    /// Footprint-cache hits.
    pub rule_cache_hits: u64,
    /// Footprint-cache misses.
    pub rule_cache_misses: u64,
    /// Grounded-NBA cache hits (schema v3; 0 when parsed from older
    /// documents).
    pub nba_cache_hits: u64,
    /// Grounded-NBA cache misses — distinct grounded formula shapes
    /// translated (schema v3; 0 when parsed from older documents).
    pub nba_cache_misses: u64,
    /// Crashed scheduler slices absorbed by the serving layer's
    /// supervisor and re-dispatched from a parked checkpoint (schema v4;
    /// 0 for direct runs and when parsed from older documents). The
    /// count is deterministic under a seeded crash plan, so redaction
    /// keeps it.
    pub crash_recoveries: u64,
    /// Whether any contributing search aborted on its state budget.
    pub truncated: bool,
}

impl Counters {
    /// Extracts the counter subset of a stats block.
    pub fn from_stats(stats: &SearchStats) -> Counters {
        Counters {
            states_visited: stats.states_visited,
            transitions_explored: stats.transitions_explored,
            states_expanded: stats.states_expanded,
            ample_hits: stats.ample_hits,
            full_expansions: stats.full_expansions,
            rule_evals: stats.rule_evals,
            rule_cache_hits: stats.rule_cache_hits,
            rule_cache_misses: stats.rule_cache_misses,
            nba_cache_hits: stats.nba_cache_hits,
            nba_cache_misses: stats.nba_cache_misses,
            crash_recoveries: 0,
            truncated: stats.truncated,
        }
    }
}

/// Span timers for the search phases, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// LTL-FO → NBA translation (or protocol complementation).
    pub nba_translation_ns: u64,
    /// Boot-configuration enumeration.
    pub boot_ns: u64,
    /// Successor generation (includes rule evaluation).
    pub successor_ns: u64,
    /// Rule evaluation inside boot + successor generation.
    pub rule_eval_ns: u64,
    /// Successor-generation time not spent evaluating rules: queue and
    /// oracle bookkeeping, `(boot_ns + successor_ns) - rule_eval_ns`,
    /// saturating.
    pub queue_bookkeeping_ns: u64,
    /// SCC/lasso extraction.
    pub lasso_ns: u64,
    /// Counterexample replay/materialization.
    pub counterexample_ns: u64,
    /// Wall-clock of the whole entry point.
    pub total_ns: u64,
}

/// How a run that stopped without a verdict stopped (schema v2).
///
/// Present on a report exactly when its outcome is one of the abort labels
/// (`budget_exceeded`, `deadline_exceeded`, `cancelled`,
/// `worker_panicked`); absent on `holds` and `violated`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Abort {
    /// The abort label, equal to the report's outcome (see
    /// [`AbortReason::label`]).
    pub reason: String,
    /// The exhausted budget in the reason's native unit: states for
    /// `budget_exceeded`, nanoseconds for `deadline_exceeded`, 0 for
    /// externally imposed stops (see [`AbortReason::budget`]).
    pub budget: u64,
    /// What the run had spent when it stopped: states visited for
    /// `budget_exceeded` / `cancelled` / `worker_panicked`, elapsed
    /// nanoseconds for `deadline_exceeded`.
    pub spent: u64,
    /// Whether the run captured a checkpoint a caller can resume from.
    pub resumable: bool,
}

impl Abort {
    /// Builds the abort object for a reason, with `spent` filled from the
    /// unit the reason's budget is denominated in.
    pub fn new(
        reason: &AbortReason,
        states_visited: u64,
        elapsed_ns: u64,
        resumable: bool,
    ) -> Abort {
        let spent = match reason {
            AbortReason::DeadlineExceeded { .. } => elapsed_ns,
            _ => states_visited,
        };
        Abort {
            reason: reason.label().to_string(),
            budget: reason.budget(),
            spent,
            resumable,
        }
    }
}

/// The final report of one verification run.
///
/// Emitted by every entry point — `Verifier::check`, `check_modular`, the
/// protocol checks, and the bench harness — through the run's
/// [`Reporter`](crate::Reporter), and carried on the verifier's `Report`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Which entry point produced the report (`"check"`,
    /// `"check_modular"`, `"protocol_data_agnostic"`,
    /// `"protocol_data_aware"`, `"bench"`).
    pub entry_point: String,
    /// The engine: `"seq"` or `"par{n}"`.
    pub engine: String,
    /// The requested reduction: `"full"` or `"ample"`.
    pub reduction: String,
    /// The rule-evaluation mode: `"compiled"` or `"interpreted"`.
    pub rule_eval: String,
    /// `"holds"`, `"violated"`, or one of the abort labels
    /// (`"budget_exceeded"`, `"deadline_exceeded"`, `"cancelled"`,
    /// `"worker_panicked"`).
    pub outcome: String,
    /// The abort object; `Some` exactly when the outcome is an abort label.
    pub abort: Option<Abort>,
    /// Universal valuations checked before the outcome was reached.
    pub valuations_checked: u64,
    /// Size of the verification domain.
    pub domain_size: u64,
    /// The counter block.
    pub counters: Counters,
    /// The phase timers.
    pub phases: PhaseTimes,
}

impl RunReport {
    /// Serializes to the canonical compact JSON encoding (stable field
    /// order; see the module docs).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The report as a [`Json`] value, in canonical field order. The
    /// `abort` field is serialized exactly when present, right after
    /// `outcome`.
    pub fn to_json_value(&self) -> Json {
        let c = &self.counters;
        let p = &self.phases;
        let mut fields = vec![
            ("schema".into(), Json::Str(SCHEMA_NAME.into())),
            ("version".into(), Json::UInt(SCHEMA_VERSION)),
            ("entry_point".into(), Json::Str(self.entry_point.clone())),
            ("engine".into(), Json::Str(self.engine.clone())),
            ("reduction".into(), Json::Str(self.reduction.clone())),
            ("rule_eval".into(), Json::Str(self.rule_eval.clone())),
            ("outcome".into(), Json::Str(self.outcome.clone())),
        ];
        if let Some(a) = &self.abort {
            fields.push((
                "abort".into(),
                Json::Object(vec![
                    ("reason".into(), Json::Str(a.reason.clone())),
                    ("budget".into(), Json::UInt(a.budget)),
                    ("spent".into(), Json::UInt(a.spent)),
                    ("resumable".into(), Json::Bool(a.resumable)),
                ]),
            ));
        }
        fields.extend([
            (
                "valuations_checked".into(),
                Json::UInt(self.valuations_checked),
            ),
            ("domain_size".into(), Json::UInt(self.domain_size)),
            (
                "counters".into(),
                Json::Object(vec![
                    ("states_visited".into(), Json::UInt(c.states_visited)),
                    (
                        "transitions_explored".into(),
                        Json::UInt(c.transitions_explored),
                    ),
                    ("states_expanded".into(), Json::UInt(c.states_expanded)),
                    ("ample_hits".into(), Json::UInt(c.ample_hits)),
                    ("full_expansions".into(), Json::UInt(c.full_expansions)),
                    ("rule_evals".into(), Json::UInt(c.rule_evals)),
                    ("rule_cache_hits".into(), Json::UInt(c.rule_cache_hits)),
                    ("rule_cache_misses".into(), Json::UInt(c.rule_cache_misses)),
                    ("nba_cache_hits".into(), Json::UInt(c.nba_cache_hits)),
                    ("nba_cache_misses".into(), Json::UInt(c.nba_cache_misses)),
                    ("crash_recoveries".into(), Json::UInt(c.crash_recoveries)),
                    ("truncated".into(), Json::Bool(c.truncated)),
                ]),
            ),
            (
                "phases".into(),
                Json::Object(vec![
                    (
                        "nba_translation_ns".into(),
                        Json::UInt(p.nba_translation_ns),
                    ),
                    ("boot_ns".into(), Json::UInt(p.boot_ns)),
                    ("successor_ns".into(), Json::UInt(p.successor_ns)),
                    ("rule_eval_ns".into(), Json::UInt(p.rule_eval_ns)),
                    (
                        "queue_bookkeeping_ns".into(),
                        Json::UInt(p.queue_bookkeeping_ns),
                    ),
                    ("lasso_ns".into(), Json::UInt(p.lasso_ns)),
                    ("counterexample_ns".into(), Json::UInt(p.counterexample_ns)),
                    ("total_ns".into(), Json::UInt(p.total_ns)),
                ]),
            ),
        ]);
        Json::Object(fields)
    }

    /// Parses and validates a report from its JSON encoding.
    pub fn from_json(input: &str) -> Result<RunReport, String> {
        let v = Json::parse(input)?;
        validate_run_report(&v)?;
        let s = |key: &str| -> String { v.get(key).and_then(Json::as_str).unwrap().to_string() };
        let u = |key: &str| -> u64 { v.get(key).and_then(Json::as_u64).unwrap() };
        let c = v.get("counters").unwrap();
        let cu = |key: &str| -> u64 { c.get(key).and_then(Json::as_u64).unwrap() };
        let p = v.get("phases").unwrap();
        let pu = |key: &str| -> u64 { p.get(key).and_then(Json::as_u64).unwrap() };
        let abort = v.get("abort").map(|a| Abort {
            reason: a.get("reason").and_then(Json::as_str).unwrap().to_string(),
            budget: a.get("budget").and_then(Json::as_u64).unwrap(),
            spent: a.get("spent").and_then(Json::as_u64).unwrap(),
            resumable: a.get("resumable").and_then(Json::as_bool).unwrap(),
        });
        Ok(RunReport {
            entry_point: s("entry_point"),
            engine: s("engine"),
            reduction: s("reduction"),
            rule_eval: s("rule_eval"),
            outcome: s("outcome"),
            abort,
            valuations_checked: u("valuations_checked"),
            domain_size: u("domain_size"),
            counters: Counters {
                states_visited: cu("states_visited"),
                transitions_explored: cu("transitions_explored"),
                states_expanded: cu("states_expanded"),
                ample_hits: cu("ample_hits"),
                full_expansions: cu("full_expansions"),
                rule_evals: cu("rule_evals"),
                rule_cache_hits: cu("rule_cache_hits"),
                rule_cache_misses: cu("rule_cache_misses"),
                // v1/v2 documents predate the NBA cache counters.
                nba_cache_hits: c.get("nba_cache_hits").and_then(Json::as_u64).unwrap_or(0),
                nba_cache_misses: c
                    .get("nba_cache_misses")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                // v1–v3 documents predate the supervisor counter.
                crash_recoveries: c
                    .get("crash_recoveries")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                truncated: c.get("truncated").and_then(Json::as_bool).unwrap(),
            },
            phases: PhaseTimes {
                nba_translation_ns: pu("nba_translation_ns"),
                boot_ns: pu("boot_ns"),
                successor_ns: pu("successor_ns"),
                rule_eval_ns: pu("rule_eval_ns"),
                queue_bookkeeping_ns: pu("queue_bookkeeping_ns"),
                lasso_ns: pu("lasso_ns"),
                counterexample_ns: pu("counterexample_ns"),
                total_ns: pu("total_ns"),
            },
        })
    }

    /// A copy with every timing and schedule-dependent field zeroed, for
    /// byte-comparison of the deterministic remainder across repeat runs.
    /// This zeroes the phase timers, the cache meters (`rule_evals`,
    /// `rule_cache_hits/misses`, `nba_cache_hits/misses` — the rule cache
    /// is shared across parallel workers and valuation shards, so the
    /// hit/miss split depends on the schedule, and a superseded shard's
    /// partial evaluations land in the run-wide totals), and, when an
    /// `abort` object is present, its `spent` field (wall-clock-dependent
    /// for deadline aborts, schedule-dependent for parallel runs).
    pub fn redacted(&self) -> RunReport {
        let mut r = self.clone();
        r.phases = PhaseTimes::default();
        r.counters.rule_evals = 0;
        r.counters.rule_cache_hits = 0;
        r.counters.rule_cache_misses = 0;
        r.counters.nba_cache_hits = 0;
        r.counters.nba_cache_misses = 0;
        if let Some(a) = &mut r.abort {
            a.spent = 0;
        }
        r
    }
}

/// Validates a parsed JSON document against every run-report schema
/// version this crate understands ([`MIN_SCHEMA_VERSION`] ..=
/// [`SCHEMA_VERSION`]): schema name, version, every required field with
/// the right type, a closed per-version outcome vocabulary, and — for v2
/// documents — the coherence rule that the `abort` object is present
/// exactly when the outcome is an abort label, with `abort.reason` equal
/// to the outcome.
pub fn validate_run_report(v: &Json) -> Result<(), String> {
    if !matches!(v, Json::Object(_)) {
        return Err("run report must be a JSON object".into());
    }
    match v.get("schema").and_then(Json::as_str) {
        Some(SCHEMA_NAME) => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let version = match v.get("version").and_then(Json::as_u64) {
        Some(n) if (MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&n) => n,
        other => return Err(format!("unsupported schema version: {other:?}")),
    };
    for key in ["entry_point", "engine", "reduction", "rule_eval", "outcome"] {
        if v.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("missing or non-string field `{key}`"));
        }
    }
    let outcome = v.get("outcome").and_then(Json::as_str).unwrap();
    let abortish = matches!(
        outcome,
        "budget_exceeded" | "deadline_exceeded" | "cancelled" | "worker_panicked"
    );
    let known = match version {
        1 => matches!(outcome, "holds" | "violated" | "budget_exceeded"),
        _ => matches!(outcome, "holds" | "violated") || abortish,
    };
    if !known {
        return Err(format!("unknown outcome `{outcome}` for version {version}"));
    }
    match (version, v.get("abort"), abortish) {
        (1, None, _) => {}
        (1, Some(_), _) => return Err("v1 report carries an `abort` object".into()),
        (_, None, false) => {}
        (_, None, true) => {
            return Err(format!("outcome `{outcome}` requires an `abort` object"));
        }
        (_, Some(_), false) => {
            return Err(format!("outcome `{outcome}` forbids an `abort` object"));
        }
        (_, Some(a), true) => {
            match a.get("reason").and_then(Json::as_str) {
                Some(reason) if reason == outcome => {}
                other => {
                    return Err(format!(
                        "abort.reason {other:?} does not match outcome `{outcome}`"
                    ));
                }
            }
            for key in ["budget", "spent"] {
                if a.get(key).and_then(Json::as_u64).is_none() {
                    return Err(format!("missing or non-integer abort field `{key}`"));
                }
            }
            if a.get("resumable").and_then(Json::as_bool).is_none() {
                return Err("missing or non-bool abort field `resumable`".into());
            }
        }
    }
    for key in ["valuations_checked", "domain_size"] {
        if v.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("missing or non-integer field `{key}`"));
        }
    }
    let counters = v
        .get("counters")
        .ok_or("missing `counters` object".to_string())?;
    for key in [
        "states_visited",
        "transitions_explored",
        "states_expanded",
        "ample_hits",
        "full_expansions",
        "rule_evals",
        "rule_cache_hits",
        "rule_cache_misses",
    ] {
        if counters.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("missing or non-integer counter `{key}`"));
        }
    }
    if version >= 3 {
        for key in ["nba_cache_hits", "nba_cache_misses"] {
            if counters.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("missing or non-integer counter `{key}`"));
            }
        }
    }
    if version >= 4
        && counters
            .get("crash_recoveries")
            .and_then(Json::as_u64)
            .is_none()
    {
        return Err("missing or non-integer counter `crash_recoveries`".into());
    }
    if counters.get("truncated").and_then(Json::as_bool).is_none() {
        return Err("missing or non-bool counter `truncated`".into());
    }
    let phases = v
        .get("phases")
        .ok_or("missing `phases` object".to_string())?;
    for key in [
        "nba_translation_ns",
        "boot_ns",
        "successor_ns",
        "rule_eval_ns",
        "queue_bookkeeping_ns",
        "lasso_ns",
        "counterexample_ns",
        "total_ns",
    ] {
        if phases.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("missing or non-integer phase `{key}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            entry_point: "check".into(),
            engine: "par2".into(),
            reduction: "ample".into(),
            rule_eval: "compiled".into(),
            outcome: "holds".into(),
            abort: None,
            valuations_checked: 3,
            domain_size: 4,
            counters: Counters {
                states_visited: 10,
                transitions_explored: 20,
                states_expanded: 11,
                ample_hits: 5,
                full_expansions: 6,
                rule_evals: 9,
                rule_cache_hits: 7,
                rule_cache_misses: 2,
                nba_cache_hits: 2,
                nba_cache_misses: 1,
                crash_recoveries: 3,
                truncated: false,
            },
            phases: PhaseTimes {
                nba_translation_ns: 1,
                boot_ns: 2,
                successor_ns: 3,
                rule_eval_ns: 4,
                queue_bookkeeping_ns: 1,
                lasso_ns: 5,
                counterexample_ns: 6,
                total_ns: 100,
            },
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let r = sample();
        let encoded = r.to_json();
        let decoded = RunReport::from_json(&encoded).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.to_json(), encoded);
    }

    fn aborted_sample() -> RunReport {
        let mut r = sample();
        r.outcome = "budget_exceeded".into();
        r.abort = Some(Abort {
            reason: "budget_exceeded".into(),
            budget: 100,
            spent: 108,
            resumable: true,
        });
        r.counters.truncated = true;
        r
    }

    #[test]
    fn validation_rejects_tampered_documents() {
        let r = sample();
        assert!(validate_run_report(&r.to_json_value()).is_ok());
        let bad_schema = r.to_json().replace("ddws.run-report", "other.schema");
        assert!(RunReport::from_json(&bad_schema).is_err());
        let bad_version = r.to_json().replace("\"version\":4", "\"version\":99");
        assert!(RunReport::from_json(&bad_version).is_err());
        let bad_outcome = r.to_json().replace("\"holds\"", "\"maybe\"");
        assert!(RunReport::from_json(&bad_outcome).is_err());
        let missing = r.to_json().replace("\"states_visited\":10,", "");
        assert!(RunReport::from_json(&missing).is_err());
    }

    #[test]
    fn abort_object_round_trips() {
        let r = aborted_sample();
        let encoded = r.to_json();
        assert!(encoded.contains("\"abort\":{\"reason\":\"budget_exceeded\""));
        let decoded = RunReport::from_json(&encoded).unwrap();
        assert_eq!(decoded, r);
        assert_eq!(decoded.to_json(), encoded);
    }

    #[test]
    fn abort_and_outcome_must_cohere() {
        // Abort-ish outcome without an abort object.
        let mut r = aborted_sample();
        r.abort = None;
        assert!(validate_run_report(&r.to_json_value()).is_err());
        // Abort object on a verdict outcome.
        let mut r = aborted_sample();
        r.outcome = "holds".into();
        assert!(validate_run_report(&r.to_json_value()).is_err());
        // Reason disagreeing with the outcome.
        let mut r = aborted_sample();
        r.abort.as_mut().unwrap().reason = "cancelled".into();
        assert!(validate_run_report(&r.to_json_value()).is_err());
        // Wrongly typed `resumable`.
        let bad = aborted_sample()
            .to_json()
            .replace("\"resumable\":true", "\"resumable\":1");
        assert!(RunReport::from_json(&bad).is_err());
    }

    #[test]
    fn v1_documents_are_still_accepted() {
        // A v1 report: version 1, no abort object, v1 outcome vocabulary.
        let v1 = sample()
            .to_json()
            .replace("\"version\":4", "\"version\":1")
            .replace("\"holds\"", "\"budget_exceeded\"");
        let decoded = RunReport::from_json(&v1).unwrap();
        assert_eq!(decoded.outcome, "budget_exceeded");
        assert_eq!(decoded.abort, None);
        // The v2-only outcome vocabulary is rejected under version 1...
        let v1_new_outcome = sample()
            .to_json()
            .replace("\"version\":4", "\"version\":1")
            .replace("\"holds\"", "\"cancelled\"");
        assert!(RunReport::from_json(&v1_new_outcome).is_err());
        // ...and so is a v1 document carrying an abort object.
        let v1_with_abort = aborted_sample()
            .to_json()
            .replace("\"version\":4", "\"version\":1");
        assert!(RunReport::from_json(&v1_with_abort).is_err());
    }

    #[test]
    fn v2_documents_are_still_accepted() {
        // A v2 report: version 2, abort object allowed, no NBA counters.
        let v2 = aborted_sample()
            .to_json()
            .replace("\"version\":4", "\"version\":2")
            .replace("\"nba_cache_hits\":2,\"nba_cache_misses\":1,", "")
            .replace("\"crash_recoveries\":3,", "");
        let decoded = RunReport::from_json(&v2).unwrap();
        assert_eq!(decoded.outcome, "budget_exceeded");
        assert!(decoded.abort.is_some());
        assert_eq!(decoded.counters.nba_cache_hits, 0);
        assert_eq!(decoded.counters.nba_cache_misses, 0);
        // A v3+ document missing the NBA counters is rejected.
        let v3_missing = aborted_sample()
            .to_json()
            .replace("\"nba_cache_hits\":2,\"nba_cache_misses\":1,", "");
        assert!(RunReport::from_json(&v3_missing).is_err());
    }

    #[test]
    fn v3_documents_are_still_accepted() {
        // A v3 report: NBA counters present, no `crash_recoveries`.
        let v3 = aborted_sample()
            .to_json()
            .replace("\"version\":4", "\"version\":3")
            .replace("\"crash_recoveries\":3,", "");
        let decoded = RunReport::from_json(&v3).unwrap();
        assert_eq!(decoded.counters.crash_recoveries, 0);
        assert_eq!(decoded.counters.nba_cache_hits, 2);
        // A v4 document missing the supervisor counter is rejected.
        let v4_missing = aborted_sample()
            .to_json()
            .replace("\"crash_recoveries\":3,", "");
        assert!(RunReport::from_json(&v4_missing).is_err());
    }

    #[test]
    fn redaction_zeroes_exactly_the_timing_fields() {
        let mut r = sample();
        let red = r.redacted();
        assert_eq!(red.phases, PhaseTimes::default());
        r.phases = PhaseTimes::default();
        r.counters.rule_evals = 0;
        r.counters.rule_cache_hits = 0;
        r.counters.rule_cache_misses = 0;
        r.counters.nba_cache_hits = 0;
        r.counters.nba_cache_misses = 0;
        assert_eq!(red, r);
        // Traversal counters survive redaction — they are the
        // deterministic remainder the differential suite compares.
        assert_eq!(red.counters.states_visited, 10);
        assert_eq!(red.counters.transitions_explored, 20);
        // Crash recoveries are deterministic under a seeded crash plan.
        assert_eq!(red.counters.crash_recoveries, 3);
        // For aborted runs, `spent` is timing/schedule-dependent too.
        let mut r = aborted_sample();
        let red = r.redacted();
        assert_eq!(red.abort.as_ref().unwrap().spent, 0);
        r.phases = PhaseTimes::default();
        r.counters.rule_evals = 0;
        r.counters.rule_cache_hits = 0;
        r.counters.rule_cache_misses = 0;
        r.counters.nba_cache_hits = 0;
        r.counters.nba_cache_misses = 0;
        r.abort.as_mut().unwrap().spent = 0;
        assert_eq!(red, r);
    }
}
