//! Reporter sinks, progress snapshots, and the telemetry bundle engines
//! thread through their search loops.

use crate::report::RunReport;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One periodic progress snapshot of a running search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    /// Nanoseconds since the run started.
    pub elapsed_ns: u64,
    /// Distinct states visited so far.
    pub states_visited: u64,
    /// Visit throughput, states per second (0 while elapsed is 0).
    pub states_per_sec: u64,
    /// Frontier size: DFS stack depth (sequential) or pending queue size
    /// (parallel).
    pub frontier: u64,
    /// Current search depth (sequential DFS only; 0 for parallel BFS).
    pub depth: u64,
    /// Ample-subset expansions so far (this worker's view).
    pub ample_hits: u64,
    /// Full expansions under active reduction so far.
    pub full_expansions: u64,
    /// Rule-cache hits so far (shared across workers).
    pub rule_cache_hits: u64,
    /// Rule-cache misses so far (shared across workers).
    pub rule_cache_misses: u64,
}

impl Progress {
    /// Fraction of reduction-active expansions answered from an ample
    /// subset, in `[0, 1]`; 0 when reduction is inactive.
    pub fn ample_ratio(&self) -> f64 {
        let total = self.ample_hits + self.full_expansions;
        if total == 0 {
            0.0
        } else {
            self.ample_hits as f64 / total as f64
        }
    }

    /// Rule-cache hit rate in `[0, 1]`; 0 before any evaluation.
    pub fn rule_cache_hit_rate(&self) -> f64 {
        let total = self.rule_cache_hits + self.rule_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.rule_cache_hits as f64 / total as f64
        }
    }
}

/// A telemetry sink. Both methods default to no-ops so implementations can
/// subscribe to progress, final reports, or both.
pub trait Reporter: Send + Sync {
    /// Called at most once per gate interval with a progress snapshot.
    fn progress(&self, _snapshot: &Progress) {}
    /// Called once with the final run report of an entry point.
    fn report(&self, _report: &RunReport) {}
}

/// The no-op reporter.
pub struct Silent;

impl Reporter for Silent {}

/// A `'static` [`Silent`] instance for borrowing without allocation.
pub static SILENT: Silent = Silent;

/// A cloneable, shareable handle to a reporter; the form `VerifyOptions`
/// carries. Defaults to [`Silent`].
#[derive(Clone)]
pub struct ReporterHandle(Arc<dyn Reporter>);

impl ReporterHandle {
    /// Wraps a reporter.
    pub fn new(reporter: Arc<dyn Reporter>) -> ReporterHandle {
        ReporterHandle(reporter)
    }

    /// The silent handle.
    pub fn silent() -> ReporterHandle {
        ReporterHandle(Arc::new(Silent))
    }

    /// Borrows the underlying reporter.
    pub fn get(&self) -> &dyn Reporter {
        &*self.0
    }
}

impl Default for ReporterHandle {
    fn default() -> ReporterHandle {
        ReporterHandle::silent()
    }
}

impl fmt::Debug for ReporterHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ReporterHandle(..)")
    }
}

/// Human-readable reporter: one progress line per snapshot and a short
/// summary block for the final report.
pub struct HumanReporter {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl HumanReporter {
    /// Reports to standard error.
    pub fn stderr() -> HumanReporter {
        HumanReporter::to_writer(Box::new(std::io::stderr()))
    }

    /// Reports to an arbitrary writer.
    pub fn to_writer(sink: Box<dyn Write + Send>) -> HumanReporter {
        HumanReporter {
            sink: Mutex::new(sink),
        }
    }
}

impl Reporter for HumanReporter {
    fn progress(&self, s: &Progress) {
        let mut sink = self.sink.lock().unwrap();
        let _ = writeln!(
            sink,
            "[search {:>6.1}s] {} states ({} st/s), frontier {}, depth {}, \
             ample {:.0}%, cache {:.0}%",
            s.elapsed_ns as f64 / 1e9,
            s.states_visited,
            s.states_per_sec,
            s.frontier,
            s.depth,
            s.ample_ratio() * 100.0,
            s.rule_cache_hit_rate() * 100.0,
        );
    }

    fn report(&self, r: &RunReport) {
        let mut sink = self.sink.lock().unwrap();
        let c = &r.counters;
        let p = &r.phases;
        let _ = writeln!(
            sink,
            "[{} {}/{}/{}] {} in {:.3}s: {} states, {} transitions, \
             {} expanded (ample {}, full {}), {} rule evals \
             ({} hit / {} miss), {} valuations over domain of {}{}",
            r.entry_point,
            r.engine,
            r.reduction,
            r.rule_eval,
            r.outcome,
            p.total_ns as f64 / 1e9,
            c.states_visited,
            c.transitions_explored,
            c.states_expanded,
            c.ample_hits,
            c.full_expansions,
            c.rule_evals,
            c.rule_cache_hits,
            c.rule_cache_misses,
            r.valuations_checked,
            r.domain_size,
            if c.truncated { " [truncated]" } else { "" },
        );
    }
}

/// JSON-lines reporter: progress snapshots as `{"event":"progress",...}`
/// lines, the final report as its canonical run-report object (which
/// self-identifies via its `schema` field).
pub struct JsonLinesReporter {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesReporter {
    /// Reports to standard error.
    pub fn stderr() -> JsonLinesReporter {
        JsonLinesReporter::to_writer(Box::new(std::io::stderr()))
    }

    /// Reports to an arbitrary writer.
    pub fn to_writer(sink: Box<dyn Write + Send>) -> JsonLinesReporter {
        JsonLinesReporter {
            sink: Mutex::new(sink),
        }
    }
}

impl Reporter for JsonLinesReporter {
    fn progress(&self, s: &Progress) {
        let mut sink = self.sink.lock().unwrap();
        let _ = writeln!(
            sink,
            "{{\"event\":\"progress\",\"elapsed_ns\":{},\"states_visited\":{},\
             \"states_per_sec\":{},\"frontier\":{},\"depth\":{},\
             \"ample_hits\":{},\"full_expansions\":{},\
             \"rule_cache_hits\":{},\"rule_cache_misses\":{}}}",
            s.elapsed_ns,
            s.states_visited,
            s.states_per_sec,
            s.frontier,
            s.depth,
            s.ample_hits,
            s.full_expansions,
            s.rule_cache_hits,
            s.rule_cache_misses,
        );
    }

    fn report(&self, r: &RunReport) {
        let mut sink = self.sink.lock().unwrap();
        let _ = writeln!(sink, "{}", r.to_json());
    }
}

/// In-memory reporter for tests: records every snapshot and report.
#[derive(Default)]
pub struct BufferReporter {
    snapshots: Mutex<Vec<Progress>>,
    reports: Mutex<Vec<RunReport>>,
}

impl BufferReporter {
    /// An empty buffer.
    pub fn new() -> BufferReporter {
        BufferReporter::default()
    }

    /// All progress snapshots recorded so far.
    pub fn snapshots(&self) -> Vec<Progress> {
        self.snapshots.lock().unwrap().clone()
    }

    /// All run reports recorded so far.
    pub fn reports(&self) -> Vec<RunReport> {
        self.reports.lock().unwrap().clone()
    }

    /// Drains and returns the recorded run reports.
    pub fn take_reports(&self) -> Vec<RunReport> {
        std::mem::take(&mut *self.reports.lock().unwrap())
    }
}

impl Reporter for BufferReporter {
    fn progress(&self, snapshot: &Progress) {
        self.snapshots.lock().unwrap().push(*snapshot);
    }

    fn report(&self, report: &RunReport) {
        self.reports.lock().unwrap().push(report.clone());
    }
}

/// One event captured by a [`StreamReporter`], in emission order: a
/// periodic progress snapshot or the final run report of an entry point.
#[derive(Clone, Debug)]
pub enum TelemetryEvent {
    /// A periodic [`Progress`] snapshot.
    Progress(Progress),
    /// A final [`RunReport`] (boxed: a report is an order of magnitude
    /// larger than a progress snapshot).
    Report(Box<RunReport>),
}

/// A reporter that appends every event to a shared, drainable queue — the
/// streaming backend for serving per-job telemetry over a wire protocol.
///
/// Unlike [`BufferReporter`] (which snapshots for test assertions), this
/// sink is built for *consumption*: the producer side is handed to the
/// engines via [`ReporterHandle`], a clone stays with the server, and
/// [`StreamReporter::drain`] moves everything emitted since the last
/// drain to the caller. Events never interleave across clones — both
/// sides share one queue.
#[derive(Clone, Default)]
pub struct StreamReporter {
    events: Arc<Mutex<Vec<TelemetryEvent>>>,
}

impl StreamReporter {
    /// An empty stream.
    pub fn new() -> StreamReporter {
        StreamReporter::default()
    }

    /// Moves every event emitted since the last drain to the caller.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Number of undrained events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether the stream has no undrained events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Reporter for StreamReporter {
    fn progress(&self, snapshot: &Progress) {
        self.events
            .lock()
            .unwrap()
            .push(TelemetryEvent::Progress(*snapshot));
    }

    fn report(&self, report: &RunReport) {
        self.events
            .lock()
            .unwrap()
            .push(TelemetryEvent::Report(Box::new(report.clone())));
    }
}

/// A lock-free time gate throttling progress emission.
///
/// Workers call [`ProgressGate::due`] from their search loops (typically
/// every ~1024 expansions); it returns `true` for exactly one caller per
/// elapsed interval, claimed by a compare-exchange on the next-due
/// deadline. An interval of zero makes every call due — useful in tests.
pub struct ProgressGate {
    start: Instant,
    interval_ns: u64,
    next_due: AtomicU64,
}

impl ProgressGate {
    /// A gate that first fires once `interval` has elapsed.
    pub fn new(interval: Duration) -> ProgressGate {
        let interval_ns = interval.as_nanos().min(u64::MAX as u128) as u64;
        ProgressGate {
            start: Instant::now(),
            interval_ns,
            next_due: AtomicU64::new(interval_ns),
        }
    }

    /// Nanoseconds since the gate (and the run) started.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Whether a snapshot is due now; at most one caller per interval
    /// wins.
    pub fn due(&self) -> bool {
        let now = self.elapsed_ns();
        let due_at = self.next_due.load(Ordering::Relaxed);
        if now < due_at {
            return false;
        }
        self.next_due
            .compare_exchange(
                due_at,
                now.saturating_add(self.interval_ns.max(1)),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
    }
}

/// A source of shared rule-cache counters, read when composing a progress
/// snapshot (the per-worker counters do not see the shared cache).
pub trait RuleMeterSource: Sync {
    /// Current `(hits, misses)` of the shared footprint cache.
    fn rule_cache_counts(&self) -> (u64, u64);
}

/// The bundle of telemetry references an engine threads through its
/// search loop. Copyable; [`EngineTelemetry::silent`] is the inert
/// default used by telemetry-unaware callers.
#[derive(Clone, Copy)]
pub struct EngineTelemetry<'a> {
    /// Where snapshots go.
    pub reporter: &'a dyn Reporter,
    /// Progress throttle; `None` disables progress emission entirely.
    pub gate: Option<&'a ProgressGate>,
    /// Shared rule-cache counters for snapshots, if any.
    pub rule_meter: Option<&'a dyn RuleMeterSource>,
}

impl EngineTelemetry<'static> {
    /// The inert bundle: silent reporter, no gate.
    pub fn silent() -> EngineTelemetry<'static> {
        EngineTelemetry {
            reporter: &SILENT,
            gate: None,
            rule_meter: None,
        }
    }
}

impl Default for EngineTelemetry<'static> {
    fn default() -> EngineTelemetry<'static> {
        EngineTelemetry::silent()
    }
}

impl<'a> EngineTelemetry<'a> {
    /// Emits a progress snapshot if the gate says one is due. Engines call
    /// this on a coarse counter mask; the `None`-gate path is a single
    /// branch.
    pub fn maybe_emit(
        &self,
        states_visited: u64,
        frontier: u64,
        depth: u64,
        ample_hits: u64,
        full_expansions: u64,
    ) {
        let Some(gate) = self.gate else { return };
        if !gate.due() {
            return;
        }
        let elapsed_ns = gate.elapsed_ns();
        let (rule_cache_hits, rule_cache_misses) = self
            .rule_meter
            .map_or((0, 0), RuleMeterSource::rule_cache_counts);
        let states_per_sec = if elapsed_ns == 0 {
            0
        } else {
            ((states_visited as u128 * 1_000_000_000) / elapsed_ns as u128).min(u64::MAX as u128)
                as u64
        };
        self.reporter.progress(&Progress {
            elapsed_ns,
            states_visited,
            states_per_sec,
            frontier,
            depth,
            ample_hits,
            full_expansions,
            rule_cache_hits,
            rule_cache_misses,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Counters, PhaseTimes};

    #[test]
    fn zero_interval_gate_is_always_due_and_buffer_records() {
        let gate = ProgressGate::new(Duration::from_secs(0));
        let buf = BufferReporter::new();
        let tel = EngineTelemetry {
            reporter: &buf,
            gate: Some(&gate),
            rule_meter: None,
        };
        tel.maybe_emit(10, 2, 3, 1, 4);
        tel.maybe_emit(20, 1, 1, 2, 8);
        let snaps = buf.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].states_visited, 10);
        assert_eq!(snaps[1].full_expansions, 8);
    }

    #[test]
    fn long_interval_gate_suppresses_everything() {
        let gate = ProgressGate::new(Duration::from_secs(3600));
        let buf = BufferReporter::new();
        let tel = EngineTelemetry {
            reporter: &buf,
            gate: Some(&gate),
            rule_meter: None,
        };
        for i in 0..100 {
            tel.maybe_emit(i, 0, 0, 0, 0);
        }
        assert!(buf.snapshots().is_empty());
    }

    #[test]
    fn silent_bundle_never_calls_the_meter() {
        struct Panicky;
        impl RuleMeterSource for Panicky {
            fn rule_cache_counts(&self) -> (u64, u64) {
                panic!("must not be read without a due gate")
            }
        }
        let tel = EngineTelemetry {
            reporter: &SILENT,
            gate: None,
            rule_meter: Some(&Panicky),
        };
        tel.maybe_emit(1, 1, 1, 1, 1);
    }

    #[test]
    fn json_lines_reporter_emits_valid_lines() {
        use std::sync::{Arc as StdArc, Mutex as StdMutex};
        #[derive(Clone, Default)]
        struct Shared(StdArc<StdMutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let rep = JsonLinesReporter::to_writer(Box::new(shared.clone()));
        rep.progress(&Progress {
            states_visited: 5,
            ..Progress::default()
        });
        rep.report(&RunReport {
            entry_point: "check".into(),
            engine: "seq".into(),
            reduction: "full".into(),
            rule_eval: "compiled".into(),
            outcome: "holds".into(),
            abort: None,
            valuations_checked: 1,
            domain_size: 2,
            counters: Counters::default(),
            phases: PhaseTimes::default(),
        });
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let progress = crate::Json::parse(lines[0]).unwrap();
        assert_eq!(
            progress.get("event").and_then(crate::Json::as_str),
            Some("progress")
        );
        let report = crate::Json::parse(lines[1]).unwrap();
        crate::validate_run_report(&report).unwrap();
    }
}
