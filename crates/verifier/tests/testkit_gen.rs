//! Randomized verifier checks on the native `ddws-testkit` generator API —
//! the always-on, shrink-free counterpart of `prop.rs` (which needs
//! `--features proptest`). Per case, the fresh-value bound, lossiness and
//! engine (sequential vs. parallel worker count) are drawn at random; the
//! verdicts must not depend on any of them.

use ddws_model::{Composition, CompositionBuilder, QueueKind};
use ddws_testkit::{gen, seed_from};
use ddws_verifier::{Verifier, VerifyOptions};

fn ping(lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(lossy);
    b.channel("ping", 1, QueueKind::Flat, "A", "B");
    b.peer("A")
        .database("friend", 1)
        .input("greet", 1)
        .input_rule("greet", &["x"], "friend(x)")
        .send_rule("ping", &["x"], "greet(x)");
    b.peer("B")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?ping(x)");
    b.build().unwrap()
}

const HOLDS: &str = "G (forall x: B.?ping(x) -> A.friend(x))";
const VIOLATED: &str = "G (forall x: B.?ping(x) -> false)";

/// Verdicts are stable across fresh-domain bounds, channel lossiness and
/// search engines (the small-model property plus the parallel-engine
/// determinism contract, sampled jointly).
#[test]
fn verdicts_stable_in_fresh_domain_and_engine() {
    gen::cases(
        8,
        seed_from("verdicts_stable_in_fresh_domain_and_engine"),
        |rng| {
            let fresh = rng.range(1, 4);
            let lossy = rng.bool();
            let threads = *rng.choose(&[None, Some(1), Some(2)]);
            let mut v = Verifier::new(ping(lossy));
            let opts = VerifyOptions {
                fresh_values: Some(fresh),
                threads,
                ..VerifyOptions::default()
            };
            let holds = v.check_str(HOLDS, &opts).unwrap();
            assert!(
                holds.outcome.holds(),
                "fresh={fresh} lossy={lossy} threads={threads:?}"
            );
            let violated = v.check_str(VIOLATED, &opts).unwrap();
            assert!(
                !violated.outcome.holds(),
                "fresh={fresh} lossy={lossy} threads={threads:?}"
            );
        },
    );
}
