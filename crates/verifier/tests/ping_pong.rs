//! End-to-end verification of a small two-peer composition through the full
//! pipeline: builder → input-boundedness → grounding → tableau → lazy-oracle
//! product search.

use ddws_model::{Composition, CompositionBuilder, QueueKind};
use ddws_relational::{Instance, Tuple, Value};
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

/// Alice greets a friend (user input), sends `ping`; Bob records `seen` and
/// pongs back; Alice records `ponged`.
fn ping_pong(lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(lossy);
    b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
    b.channel("pong", 1, QueueKind::Flat, "Bob", "Alice");
    b.peer("Alice")
        .database("friend", 1)
        .state("ponged", 1)
        .input("greet", 1)
        .input_rule("greet", &["x"], "friend(x)")
        .state_insert_rule("ponged", &["x"], "?pong(x)")
        .send_rule("ping", &["x"], "greet(x)");
    b.peer("Bob")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?ping(x)")
        .send_rule("pong", &["x"], "?ping(x)");
    b.build().unwrap()
}

fn opts() -> VerifyOptions {
    VerifyOptions {
        fresh_values: Some(2),
        ..VerifyOptions::default()
    }
}

#[test]
fn pings_only_carry_friends() {
    // Every received ping names a database friend: holds over ALL databases
    // because greet options are restricted to friends.
    let mut v = Verifier::new(ping_pong(true));
    let report = v
        .check_str("G (forall x: Bob.?ping(x) -> Alice.friend(x))", &opts())
        .unwrap();
    assert!(report.outcome.holds(), "stats: {:?}", report.stats);
    assert!(report.stats.states_visited > 0);
}

#[test]
fn some_database_delivers_a_ping() {
    // "No ping is ever received" is violated: the oracle invents a friend,
    // the user greets them, the channel delivers.
    let mut v = Verifier::new(ping_pong(true));
    let report = v
        .check_str("G (forall x: Bob.?ping(x) -> false)", &opts())
        .unwrap();
    match report.outcome {
        ddws_verifier::Outcome::Violated(cex) => {
            // The witnessing database must contain a friend.
            let friend = v.composition().voc.lookup("Alice.friend").unwrap();
            assert!(!cex.database.relation(friend).is_empty());
            assert!(!cex.cycle.is_empty());
            // Render it (smoke test for the pretty printer).
            let rendered = cex.display(v.composition()).to_string();
            assert!(rendered.contains("counterexample run"), "{rendered}");
        }
        other => panic!("expected violation, got {other:?}"),
    }
}

#[test]
fn lossy_channels_break_responsiveness() {
    // Every greeting is eventually seen by Bob — fails: the channel may
    // drop the ping (and the scheduler may never run Bob).
    let mut v = Verifier::new(ping_pong(true));
    let report = v
        .check_str("forall x: G (Alice.greet(x) -> F Bob.seen(x))", &opts())
        .unwrap();
    assert!(!report.outcome.holds());
}

#[test]
fn monotone_state_stays() {
    // `seen` has no deletion rule: once recorded, forever recorded.
    let mut v = Verifier::new(ping_pong(true));
    let report = v
        .check_str("forall x: G (Bob.seen(x) -> X Bob.seen(x))", &opts())
        .unwrap();
    assert!(report.outcome.holds());
}

#[test]
fn fixed_database_mode() {
    let comp = ping_pong(true);
    let friend = comp.voc.lookup("Alice.friend").unwrap();

    // Empty database: nobody can be greeted, no ping is ever received.
    let mut v = Verifier::new(comp);
    let empty_db = Instance::empty(&v.composition().voc);
    let report = v
        .check_str(
            "G (forall x: Bob.?ping(x) -> false)",
            &VerifyOptions {
                database: DatabaseMode::Fixed(empty_db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            },
        )
        .unwrap();
    assert!(report.outcome.holds(), "no friends, no pings");

    // One friend: a ping can arrive.
    let mut db = Instance::empty(&v.composition().voc);
    db.relation_mut(friend).insert(Tuple::new(vec![Value(0)]));
    let report = v
        .check_str(
            "G (forall x: Bob.?ping(x) -> false)",
            &VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                ..VerifyOptions::default()
            },
        )
        .unwrap();
    assert!(!report.outcome.holds());
}

#[test]
fn budget_is_enforced() {
    let mut v = Verifier::new(ping_pong(true));
    let report = v
        .check_str(
            "G (forall x: Bob.?ping(x) -> Alice.friend(x))",
            &VerifyOptions {
                max_states: 10,
                fresh_values: Some(2),
                ..VerifyOptions::default()
            },
        )
        .expect("a budget stop is a report, not an error");
    match report.outcome {
        ddws_verifier::Outcome::Inconclusive(inc) => {
            assert!(matches!(
                inc.reason,
                ddws_verifier::AbortReason::StateBudget { max_states: 10 }
            ));
            let cp = inc.checkpoint.expect("budget stops are resumable");
            assert!(cp.states_visited() >= 10);
        }
        other => panic!("expected an inconclusive outcome, got {other:?}"),
    }
    assert!(report.stats.truncated);
    assert_eq!(report.telemetry.outcome, "budget_exceeded");
    let abort = report.telemetry.abort.as_ref().expect("abort object");
    assert_eq!(abort.budget, 10);
    assert!(abort.resumable);
}

#[test]
fn budget_stop_resumes_to_the_unbounded_verdict() {
    let mut v = Verifier::new(ping_pong(true));
    let property = "G (forall x: Bob.?ping(x) -> Alice.friend(x))";
    let unbounded = VerifyOptions {
        fresh_values: Some(2),
        ..VerifyOptions::default()
    };
    let expected = v.check_str(property, &unbounded).unwrap();
    for threads in [None, Some(2)] {
        let bounded = VerifyOptions {
            max_states: 10,
            threads,
            ..unbounded.clone()
        };
        let report = v.check_str(property, &bounded).unwrap();
        let cp = match report.outcome {
            ddws_verifier::Outcome::Inconclusive(inc) => inc.checkpoint.unwrap(),
            other => panic!("expected an inconclusive outcome, got {other:?}"),
        };
        assert_eq!(cp.threads(), threads);
        let resumed = v.resume(cp, &unbounded).unwrap();
        assert_eq!(
            resumed.outcome.holds(),
            expected.outcome.holds(),
            "threads={threads:?}: resume must agree with the unbounded run"
        );
        assert!(!resumed.outcome.is_inconclusive());
        assert_eq!(resumed.telemetry.entry_point, "resume");
        assert_eq!(resumed.valuations_checked, expected.valuations_checked);
    }
}

#[test]
fn non_input_bounded_property_rejected() {
    // ∃x over a state atom has no admissible guard (state atoms may not
    // bind quantified variables — the heart of §3.1).
    let mut v = Verifier::new(ping_pong(true));
    let err = v
        .check_str("G (exists x: Alice.ponged(x))", &opts())
        .unwrap_err();
    assert!(matches!(
        err,
        ddws_verifier::VerifyError::NotInputBounded(_)
    ));
}
