//! Verdict equivalence of the composition → single-peer reduction
//! (the machinery behind Theorem 3.4): verifying a property against the
//! composition and against its reduced single peer must agree.

use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::reduction::{
    reduce_to_single_peer, translate_database, translate_property_source,
};
use ddws_verifier::{DatabaseMode, Reduction, Verifier, VerifyOptions};

/// Lossy-flat ping-pong (the decidable regime the reduction targets).
fn ping_pong() -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(true);
    b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
    b.channel("pong", 1, QueueKind::Flat, "Bob", "Alice");
    b.peer("Alice")
        .database("friend", 1)
        .state("ponged", 1)
        .input("greet", 1)
        .input_rule("greet", &["x"], "friend(x)")
        .state_insert_rule("ponged", &["x"], "?pong(x)")
        .send_rule("ping", &["x"], "greet(x)");
    b.peer("Bob")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?ping(x)")
        .send_rule("pong", &["x"], "?ping(x)");
    b.build().unwrap()
}

/// Runs the same property against original and reduced systems — each
/// under both `Reduction::Full` and `Reduction::Ample` — and asserts that
/// all four verdicts agree.
fn assert_equivalent(comp: Composition, db_facts: &[(&str, &[&str])], property: &str) {
    // Original.
    let mut v = Verifier::new(comp);
    let mut db = Instance::empty(&v.composition().voc);
    for (rel, tuple) in db_facts {
        let values: Vec<_> = tuple
            .iter()
            .map(|n| v.composition_mut().symbols.intern(n))
            .collect();
        let id = v.composition().voc.lookup(rel).unwrap();
        db.relation_mut(id).insert(Tuple::from(values.as_slice()));
    }
    let mut verdicts: Vec<(String, bool)> = Vec::new();
    for reduction in [Reduction::Full, Reduction::Ample] {
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(db.clone()),
            fresh_values: Some(1),
            reduction,
            ..VerifyOptions::default()
        };
        let report = v.check_str(property, &opts).unwrap();
        verdicts.push((format!("original/{reduction:?}"), report.outcome.holds()));
    }

    // Reduced.
    let mut reduced = reduce_to_single_peer(v.composition()).unwrap();
    let reduced_db = translate_database(&mut reduced, v.composition(), &db);
    let reduced_property = translate_property_source(&reduced, v.composition(), property);
    let mut rv = Verifier::new(reduced.composition);
    for reduction in [Reduction::Full, Reduction::Ample] {
        let ropts = VerifyOptions {
            database: DatabaseMode::Fixed(reduced_db.clone()),
            fresh_values: Some(1),
            reduction,
            // The reduction's scheduler constants and pick inputs fall
            // outside the letter-perfect input-bounded fragment;
            // equivalence, not input-boundedness, is under test here.
            require_input_bounded: false,
            ..VerifyOptions::default()
        };
        let report = rv.check_str(&reduced_property, &ropts).unwrap();
        verdicts.push((format!("single-peer/{reduction:?}"), report.outcome.holds()));
    }

    let reference = verdicts[0].1;
    for (label, holds) in &verdicts {
        assert_eq!(
            *holds, reference,
            "verdict diverges for `{property}` at {label}: {verdicts:?}"
        );
    }
}

#[test]
fn safety_invariant_agrees() {
    assert_equivalent(
        ping_pong(),
        &[("Alice.friend", &["a"])],
        "G (forall x: Bob.?ping(x) -> Alice.friend(x))",
    );
}

#[test]
fn reachability_violation_agrees() {
    assert_equivalent(
        ping_pong(),
        &[("Alice.friend", &["a"])],
        "G (forall x: Bob.?ping(x) -> false)",
    );
}

#[test]
fn state_monotonicity_agrees() {
    assert_equivalent(
        ping_pong(),
        &[("Alice.friend", &["a"])],
        "forall x: G (Bob.seen(x) -> X Bob.seen(x))",
    );
}

#[test]
fn liveness_violation_agrees() {
    assert_equivalent(
        ping_pong(),
        &[("Alice.friend", &["a"])],
        "forall x: G (Alice.greet(x) -> F Bob.seen(x))",
    );
}

#[test]
fn empty_database_agrees() {
    assert_equivalent(ping_pong(), &[], "G (forall x: Bob.?ping(x) -> false)");
}

#[test]
fn perfect_flat_channels_are_rejected() {
    let mut b = CompositionBuilder::new();
    b.default_lossy(false);
    b.channel("q", 1, QueueKind::Flat, "P", "R");
    b.peer("P").database("d", 1).send_rule("q", &["x"], "d(x)");
    b.peer("R");
    let comp = b.build().unwrap();
    let err = reduce_to_single_peer(&comp).unwrap_err();
    assert!(
        matches!(
            err,
            ddws_verifier::reduction::ReductionError::PerfectFlatChannel(_)
        ),
        "{err}"
    );
}

#[test]
fn perfect_nested_channels_reduce() {
    // The remark after Theorem 3.4: perfect *nested* channels stay in the
    // decidable regime — and indeed they reduce.
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        nested_send_skips_empty: true,
        ..Semantics::default()
    });
    b.default_lossy(false);
    b.channel("set", 1, QueueKind::Nested, "P", "R");
    b.peer("P")
        .database("d", 1)
        .send_rule("set", &["x"], "d(x)");
    b.peer("R")
        .state("got", 1)
        .state_insert_rule("got", &["x"], "?set(x)");
    let comp = b.build().unwrap();
    // NB: quantified variables may not appear in nested-queue atoms (§3.1),
    // so the property uses a closure variable over the receiving state.
    assert_equivalent(comp, &[("P.d", &["a"])], "forall x: G (R.got(x) -> P.d(x))");
}
