//! Property-based tests of the verifier itself.

use ddws_model::{Composition, CompositionBuilder, QueueKind};
use ddws_relational::{Instance, Tuple};
use ddws_testkit::proptest::prelude::*;
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn ping(lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(lossy);
    b.channel("ping", 1, QueueKind::Flat, "A", "B");
    b.peer("A")
        .database("friend", 1)
        .input("greet", 1)
        .input_rule("greet", &["x"], "friend(x)")
        .send_rule("ping", &["x"], "greet(x)");
    b.peer("B")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?ping(x)");
    b.build().unwrap()
}

const HOLDS: &str = "G (forall x: B.?ping(x) -> A.friend(x))";
const VIOLATED: &str = "G (forall x: B.?ping(x) -> false)";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Verdicts are stable as the fresh-domain bound grows (the small-model
    /// property: once large enough, more fresh values change nothing).
    #[test]
    fn verdicts_stable_in_fresh_domain(fresh in 1usize..4, lossy in any::<bool>()) {
        let mut v = Verifier::new(ping(lossy));
        let opts = VerifyOptions {
            fresh_values: Some(fresh),
            ..VerifyOptions::default()
        };
        let holds = v.check_str(HOLDS, &opts).unwrap();
        prop_assert!(holds.outcome.holds());
        let violated = v.check_str(VIOLATED, &opts).unwrap();
        prop_assert!(!violated.outcome.holds());
    }

    /// All-databases violation implies a fixed-database violation over the
    /// counterexample's own database (the oracle's witness is replayable).
    #[test]
    fn oracle_witness_replays_under_fixed_database(lossy in any::<bool>()) {
        let mut v = Verifier::new(ping(lossy));
        let opts = VerifyOptions {
            fresh_values: Some(2),
            ..VerifyOptions::default()
        };
        let report = v.check_str(VIOLATED, &opts).unwrap();
        let cex = match report.outcome {
            ddws_verifier::Outcome::Violated(c) => c,
            _ => return Err(TestCaseError::fail("expected violation")),
        };
        let replay = v
            .check_str(
                VIOLATED,
                &VerifyOptions {
                    database: DatabaseMode::Fixed(cex.database.clone()),
                    fresh_values: Some(1),
                    ..VerifyOptions::default()
                },
            )
            .unwrap();
        prop_assert!(!replay.outcome.holds(), "witness database must replay");
    }

    /// Fixed-database verdicts are monotone under database growth for the
    /// violated reachability property: adding friends cannot *unviolate* it.
    #[test]
    fn violations_monotone_in_database(n in 1usize..4) {
        let mut v = Verifier::new(ping(true));
        let mut db = Instance::empty(&v.composition().voc);
        let friend = v.composition().voc.lookup("A.friend").unwrap();
        for i in 0..n {
            let val = v.composition_mut().symbols.intern(&format!("f{i}"));
            db.relation_mut(friend).insert(Tuple::new(vec![val]));
        }
        let report = v
            .check_str(
                VIOLATED,
                &VerifyOptions {
                    database: DatabaseMode::Fixed(db),
                    fresh_values: Some(1),
                    ..VerifyOptions::default()
                },
            )
            .unwrap();
        prop_assert!(!report.outcome.holds());
    }
}

#[test]
fn open_composition_with_all_databases() {
    // Environment moves and the lazy oracle compose: the environment can
    // deliver any domain value, so "got only holds database values" is
    // violated regardless of the database.
    use ddws_model::builder::ENV;
    use ddws_model::QueueKind;
    let mut b = ddws_model::CompositionBuilder::new();
    b.default_lossy(true);
    b.channel("resp", 1, QueueKind::Flat, ENV, "P");
    b.peer("P")
        .database("d", 1)
        .state("got", 1)
        .state_insert_rule("got", &["x"], "?resp(x)");
    let mut v = Verifier::new(b.build().unwrap());
    let report = v
        .check_str(
            "G (forall x: P.?resp(x) -> P.d(x))",
            &VerifyOptions {
                fresh_values: Some(2),
                ..VerifyOptions::default()
            },
        )
        .unwrap();
    assert!(
        !report.outcome.holds(),
        "the unconstrained environment can send values outside d"
    );
}
