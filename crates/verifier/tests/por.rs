//! Safety side-conditions of the ample-set partial-order reduction
//! (DESIGN.md §"Partial-order reduction").
//!
//! The reduction may only prune interleavings the property cannot tell
//! apart. These tests pin the gates that keep it sound:
//!
//! * observing a queue-emptiness proposition (`emptyQ`) of a channel makes
//!   the channel's sender *visible*, forcing full expansion where that
//!   proposition could flip;
//! * observing a `receivedQ` flag makes the flag *tracked*, and since every
//!   move resets all tracked flags, every mover becomes dependent — the
//!   reduction degrades to full expansion everywhere;
//! * a property containing `X` is not stutter-invariant, so the reduction
//!   switches itself off entirely (no ample *or* full-expansion counters).
//!
//! All assertions go through `Report.stats` (`ample_hits`,
//! `full_expansions`), on both the sequential and the parallel engine.

use ddws_model::{Composition, CompositionBuilder, QueueKind};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{DatabaseMode, Reduction, Report, Verifier, VerifyOptions};

/// Two chained peers (`A --hop--> B`) plus an auditor that rotates a
/// two-phase state and sends a beacon on `audit` — a channel `B` never
/// dequeues. The auditor touches no resource the chain reads, so with
/// nothing audit-related observed it is the statically independent, ample
/// mover; observing `B.empty_audit` or `received_audit` must re-couple it.
fn audited() -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(true);
    b.channel("hop", 1, QueueKind::Flat, "A", "B");
    b.channel("audit", 1, QueueKind::Flat, "Aud", "B");
    b.peer("A")
        .database("token", 1)
        .input("emit", 1)
        .input_rule("emit", &["x"], "token(x)")
        .send_rule("hop", &["x"], "emit(x)");
    b.peer("B")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?hop(x)");
    b.peer("Aud")
        .state("phase", 1)
        .state_insert_rule(
            "phase",
            &["x"],
            "(x = \"r0\" and not (phase(\"r0\") or phase(\"r1\"))) \
             or (x = \"r1\" and phase(\"r0\")) \
             or (x = \"r0\" and phase(\"r1\"))",
        )
        .state_delete_rule("phase", &["x"], "phase(x)")
        .send_rule("audit", &["x"], "x = \"r0\" and phase(\"r1\")");
    b.build().unwrap()
}

fn check(property: &str, reduction: Reduction, threads: Option<usize>) -> Report {
    let mut v = Verifier::new(audited());
    let mut db = Instance::empty(&v.composition().voc);
    let t = v.composition_mut().symbols.intern("t");
    let token = v.composition().voc.lookup("A.token").unwrap();
    db.relation_mut(token).insert(Tuple::new(vec![t]));
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        reduction,
        threads,
        ..VerifyOptions::default()
    };
    v.check_str(property, &opts)
        .expect("verification completes")
}

const ENGINES: [Option<usize>; 2] = [None, Some(2)];

/// The chain-only safety property: holds, and nothing audit-related is
/// observed, so the auditor is ample almost everywhere.
const CHAIN_SAFETY: &str = "G (forall x: B.?hop(x) -> A.token(x))";

#[test]
fn invisible_auditor_is_reduced() {
    for threads in ENGINES {
        let full = check(CHAIN_SAFETY, Reduction::Full, threads);
        let ample = check(CHAIN_SAFETY, Reduction::Ample, threads);
        assert!(full.outcome.holds() && ample.outcome.holds(), "{threads:?}");
        assert_eq!(full.stats.ample_hits, 0);
        assert_eq!(full.stats.full_expansions, 0);
        assert!(ample.stats.ample_hits > 0, "threads={threads:?}");
        assert!(
            ample.stats.states_visited < full.stats.states_visited,
            "threads={threads:?}: reduction must prune some states"
        );
    }
}

#[test]
fn observed_empty_q_forces_full_expansion() {
    // `B.empty_audit` reads the audit queue, whose contents only the
    // auditor's sends change: the auditor is now visible (C2), and with the
    // chained peers already mutually dependent no ample mover remains.
    // The verdict must still agree with the unreduced search.
    let prop = "G ((forall x: B.?hop(x) -> A.token(x)) and (B.empty_audit or not B.empty_audit))";
    for threads in ENGINES {
        let full = check(prop, Reduction::Full, threads);
        let ample = check(prop, Reduction::Ample, threads);
        assert_eq!(full.outcome.holds(), ample.outcome.holds());
        assert_eq!(
            ample.stats.ample_hits, 0,
            "threads={threads:?}: emptyQ visibility must disable the reduction"
        );
        assert!(
            ample.stats.full_expansions > 0,
            "threads={threads:?}: the reduction stayed active but expanded fully"
        );
        assert_eq!(ample.stats.states_visited, full.stats.states_visited);
    }
}

#[test]
fn observed_received_q_forces_full_expansion() {
    // Observing `received_audit` makes the flag part of every snapshot, and
    // every move rewrites all tracked flags — so every mover conflicts with
    // every other and the reduction degrades to full expansion everywhere.
    // (The flag flips when the auditor's beacon is *delivered*, so the
    // property is violated — identically under both reductions.)
    let prop = "G (not received_audit)";
    for threads in ENGINES {
        let full = check(prop, Reduction::Full, threads);
        let ample = check(prop, Reduction::Ample, threads);
        assert_eq!(full.outcome.holds(), ample.outcome.holds(), "{threads:?}");
        assert!(!ample.outcome.holds(), "delivery sets the flag");
        assert_eq!(
            ample.stats.ample_hits, 0,
            "threads={threads:?}: a tracked receivedQ flag must disable the reduction"
        );
        assert!(ample.stats.full_expansions > 0, "threads={threads:?}");
        assert_eq!(ample.stats.states_visited, full.stats.states_visited);
    }
}

#[test]
fn next_operator_switches_reduction_off() {
    // `X` breaks stutter-invariance, so the oracle is never even built:
    // both reduction counters stay zero (unlike the degraded cases above,
    // where `full_expansions` ticks).
    let prop = "forall x: G (B.seen(x) -> X B.seen(x))";
    for threads in ENGINES {
        let full = check(prop, Reduction::Full, threads);
        let ample = check(prop, Reduction::Ample, threads);
        assert_eq!(full.outcome.holds(), ample.outcome.holds());
        assert_eq!(ample.stats.ample_hits, 0, "threads={threads:?}");
        assert_eq!(ample.stats.full_expansions, 0, "threads={threads:?}");
        assert_eq!(ample.stats.states_visited, full.stats.states_visited);
    }
}
