//! Integration tests for conversation protocols (§4) and modular
//! verification (§5) on small open/closed compositions.

use ddws_automata::{Guard, Nba};
use ddws_model::{Composition, CompositionBuilder, QueueKind};
use ddws_protocol::{automata_shapes, DataAgnosticProtocol, DataAwareProtocol, Observer};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{DatabaseMode, Outcome, Verifier, VerifyOptions};

/// Closed two-peer request/response composition.
fn req_resp(lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(lossy);
    b.channel("req", 1, QueueKind::Flat, "P", "R");
    b.channel("resp", 1, QueueKind::Flat, "R", "P");
    b.peer("P")
        .database("d", 1)
        .input("pick", 1)
        .input_rule("pick", &["x"], "d(x)")
        .send_rule("req", &["x"], "pick(x)");
    b.peer("R")
        .state("served", 1)
        .state_insert_rule("served", &["x"], "?req(x)")
        .send_rule("resp", &["x"], "?req(x)");
    b.build().unwrap()
}

/// Open composition: P requests from the environment and records replies.
fn open_client() -> Composition {
    let mut b = CompositionBuilder::new();
    b.default_lossy(true);
    b.channel("req", 1, QueueKind::Flat, "P", ddws_model::builder::ENV);
    b.channel("resp", 1, QueueKind::Flat, ddws_model::builder::ENV, "P");
    b.peer("P")
        .database("d", 1)
        .state("got", 1)
        .input("pick", 1)
        .input_rule("pick", &["x"], "d(x)")
        .state_insert_rule("got", &["x"], "?resp(x)")
        .send_rule("req", &["x"], "pick(x)");
    b.build().unwrap()
}

fn db_with(v: &mut Verifier, rel: &str, names: &[&str]) -> Instance {
    let comp = v.composition_mut();
    let values: Vec<_> = names.iter().map(|n| comp.symbols.intern(n)).collect();
    let mut db = Instance::empty(&comp.voc);
    let id = comp.voc.lookup(rel).unwrap();
    for val in values {
        db.relation_mut(id).insert(Tuple::new(vec![val]));
    }
    db
}

fn opts(db: Instance) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        ..VerifyOptions::default()
    }
}

// --- data-agnostic protocols (Theorem 4.2) ------------------------------

#[test]
fn no_response_before_request_holds() {
    // Protocol: no `resp` may be enqueued before the first `req`.
    // Σ = {req, resp}; automaton: ¬resp U req, or G ¬resp.
    let mut v = Verifier::new(req_resp(true));
    let db = db_with(&mut v, "P.d", &["a"]);
    // State 0: nothing seen; resp forbidden until req. req seen -> state 1
    // where everything is allowed.
    let mut nba = Nba::new(2, 2);
    nba.add_initial(0);
    nba.add_transition(0, Guard::forbid(1).and(Guard::forbid(0)), 0);
    nba.add_transition(0, Guard::require(0), 1);
    nba.add_transition(1, Guard::TOP, 1);
    nba.accepting[0] = true;
    nba.accepting[1] = true;
    let protocol = DataAgnosticProtocol::new(
        v.composition(),
        &["req", "resp"],
        nba,
        Observer::AtRecipient,
    )
    .unwrap();
    let report = v.check_data_agnostic(&protocol, &opts(db)).unwrap();
    assert!(report.outcome.holds(), "stats: {:?}", report.stats);
}

#[test]
fn response_protocol_fails_under_unfair_scheduling() {
    // "Every req is eventually followed by a resp" — the scheduler may
    // starve R (and lossy channels may drop the resp), so this fails.
    let mut v = Verifier::new(req_resp(true));
    let db = db_with(&mut v, "P.d", &["a"]);
    let nba = automata_shapes::response(2, 0, 1);
    let protocol = DataAgnosticProtocol::new(
        v.composition(),
        &["req", "resp"],
        nba,
        Observer::AtRecipient,
    )
    .unwrap();
    let report = v.check_data_agnostic(&protocol, &opts(db)).unwrap();
    match report.outcome {
        Outcome::Violated(cex) => {
            let (req, _) = v.composition().channel_by_name("req").unwrap();
            let delivered = cex
                .prefix
                .iter()
                .chain(cex.cycle.iter())
                .any(|s| s.config.received[req.index()]);
            assert!(delivered, "counterexample must contain an unanswered req");
        }
        other => panic!("expected violation, got {other:?}"),
    }
}

#[test]
fn never_protocol_on_dead_channel_holds() {
    // With an empty database nothing can be picked, so no req is ever
    // enqueued: "never req" holds.
    let mut v = Verifier::new(req_resp(true));
    let db = Instance::empty(&v.composition().voc);
    let nba = automata_shapes::never(2, 0);
    let protocol = DataAgnosticProtocol::new(
        v.composition(),
        &["req", "resp"],
        nba,
        Observer::AtRecipient,
    )
    .unwrap();
    let report = v.check_data_agnostic(&protocol, &opts(db)).unwrap();
    assert!(report.outcome.holds());
}

#[test]
fn observer_placement_distinguishes_lost_messages() {
    // "never req": at the recipient, a lost message is invisible; at the
    // source it is not. Freeze the composition so the only difference is
    // the observer. With a perfect channel both placements coincide; with a
    // lossy channel the at-source observer still sees the send.
    let mut v = Verifier::new(req_resp(true));
    let db = db_with(&mut v, "P.d", &["a"]);
    let nba = automata_shapes::never(1, 0);
    let at_recipient = DataAgnosticProtocol::new(
        v.composition(),
        &["req"],
        nba.clone(),
        Observer::AtRecipient,
    )
    .unwrap();
    let at_source =
        DataAgnosticProtocol::new(v.composition(), &["req"], nba, Observer::AtSource).unwrap();
    // Both are violated here (the message *can* arrive), but the at-source
    // violation can fire even on the loss branch; just assert both verdicts
    // are produced and agree on violation.
    let r1 = v
        .check_data_agnostic(&at_recipient, &opts(db.clone()))
        .unwrap();
    let r2 = v.check_data_agnostic(&at_source, &opts(db)).unwrap();
    assert!(!r1.outcome.holds());
    assert!(!r2.outcome.holds());
}

// --- data-aware protocols (Theorem 4.5) ----------------------------------

#[test]
fn data_aware_guard_checks_message_content() {
    // Symbol σ: "the last req message is a database value"; protocol: Gσ.
    let mut v = Verifier::new(req_resp(true));
    let db = db_with(&mut v, "P.d", &["a"]);
    let nba = {
        let mut nba = Nba::new(1, 1);
        nba.add_initial(0);
        nba.add_transition(0, Guard::require(0), 0);
        nba.accepting[0] = true;
        nba
    };
    let protocol = DataAwareProtocol::new(
        v.composition_mut(),
        &[("req_is_db_value", "forall x: P.!req(x) -> P.d(x)")],
        nba,
    )
    .unwrap();
    let report = v.check_data_aware(&protocol, &opts(db)).unwrap();
    assert!(report.outcome.holds(), "reqs are picked from the database");
}

#[test]
fn data_aware_guard_detects_violations() {
    // Protocol demanding every req equal "a" fails when the database also
    // holds "b".
    let mut v = Verifier::new(req_resp(true));
    let db = db_with(&mut v, "P.d", &["a", "b"]);
    let nba = {
        let mut nba = Nba::new(1, 1);
        nba.add_initial(0);
        nba.add_transition(0, Guard::require(0), 0);
        nba.accepting[0] = true;
        nba
    };
    let protocol = DataAwareProtocol::new(
        v.composition_mut(),
        &[("req_is_a", "forall x: P.!req(x) -> x = \"a\"")],
        nba,
    )
    .unwrap();
    let report = v.check_data_aware(&protocol, &opts(db)).unwrap();
    assert!(!report.outcome.holds());
}

// --- modular verification (Theorem 5.4) ----------------------------------

#[test]
fn environment_spec_makes_property_hold() {
    // Unconstrained environments can reply anything, so "P only records
    // \"ok\"" fails; under the spec "the environment only sends \"ok\"" it
    // holds.
    let mut v = Verifier::new(open_client());
    let db = db_with(&mut v, "P.d", &["ok"]);
    let property = v
        .parse_property("G (forall x: P.?resp(x) -> x = \"ok\")")
        .unwrap();

    // Without the spec: violated (the environment invents values).
    let report = v.check(&property, &opts(db.clone())).unwrap();
    assert!(
        !report.outcome.holds(),
        "an unconstrained environment sends arbitrary values"
    );

    // With the spec: holds.
    let spec = v
        .parse_env_spec("G (forall x: ENV.!resp(x) -> x = \"ok\")")
        .unwrap();
    let report = v.check_modular(&property, &spec, &opts(db)).unwrap();
    assert!(report.outcome.holds(), "stats: {:?}", report.stats);
}

#[test]
fn weak_environment_spec_leaves_property_violated() {
    let mut v = Verifier::new(open_client());
    let db = db_with(&mut v, "P.d", &["ok"]);
    let property = v
        .parse_property("G (forall x: P.?resp(x) -> x = \"ok\")")
        .unwrap();
    // A spec that allows two values cannot establish the property.
    let spec = v
        .parse_env_spec("G (forall x: ENV.!resp(x) -> (x = \"ok\" or x = \"bogus\"))")
        .unwrap();
    let report = v.check_modular(&property, &spec, &opts(db)).unwrap();
    assert!(!report.outcome.holds());
}

#[test]
fn non_strict_spec_rejected() {
    // A spec with a temporal operator under the closure (free variable) is
    // not strictly input-bounded (Theorem 5.5).
    let mut v = Verifier::new(open_client());
    let db = db_with(&mut v, "P.d", &["ok"]);
    let property = v
        .parse_property("G (forall x: P.?resp(x) -> x = \"ok\")")
        .unwrap();
    let spec = v
        .parse_env_spec("forall x: G (ENV.?req(x) -> F ENV.!resp(x))")
        .unwrap();
    let err = v.check_modular(&property, &spec, &opts(db)).unwrap_err();
    assert!(matches!(
        err,
        ddws_verifier::VerifyError::NotInputBounded(_)
    ));
}

#[test]
fn modular_verification_requires_open_composition() {
    let mut v = Verifier::new(req_resp(true));
    let db = db_with(&mut v, "P.d", &["a"]);
    let property = v.parse_property("G true").unwrap();
    let spec = v.parse_env_spec("G true").unwrap();
    let err = v.check_modular(&property, &spec, &opts(db)).unwrap_err();
    assert!(matches!(err, ddws_verifier::VerifyError::Unsupported(_)));
}
