//! The verification domain.
//!
//! Input-boundedness confines quantified values to inputs, previous inputs
//! and flat-queue heads, which gives the specification a small-model
//! property (the engine behind Theorem 3.4 and [12]): a property violated
//! over *some* database is violated over one whose active domain is bounded
//! by a function of the specification. The verification domain is therefore
//!
//! > all constants of the rules and the property, plus `fresh` synthetic
//! > values standing for "arbitrary distinct data".
//!
//! [`suggested_fresh_values`] is a conservative default for `fresh`; the
//! benchmark suite (EXPERIMENTS.md, E1) sweeps it to show verdict
//! stabilization.

use ddws_logic::LtlFoSentence;
use ddws_model::Composition;
use ddws_relational::Value;

/// Heuristic number of fresh domain values: one per universally quantified
/// property variable, plus the largest input/flat-channel arity (so a rule
/// can be fed entirely distinct fresh values), with a floor of 2 (so
/// inequalities are satisfiable).
pub fn suggested_fresh_values(comp: &Composition, property: &LtlFoSentence) -> usize {
    let max_input_arity = comp
        .peers
        .iter()
        .flat_map(|p| p.inputs.iter())
        .map(|&r| comp.voc.arity(r))
        .max()
        .unwrap_or(0);
    let max_flat_arity = comp
        .channels
        .iter()
        .filter(|c| c.kind == ddws_model::QueueKind::Flat)
        .map(|c| c.arity)
        .max()
        .unwrap_or(0);
    (property.universal_vars.len() + max_input_arity.max(max_flat_arity)).max(2)
}

/// The value capacity the compact representation's bit-packing must cover:
/// one past the largest [`Value`] index any reachable extension can hold.
///
/// Over the input-bounded fragment every value a run manipulates comes
/// from the closed verification domain (rule and property constants plus
/// the database active domain plus the fresh values — all interned before
/// the search starts), so the maximum of the domain's indices and the
/// symbol table's length bounds every packable index. The symbol-table
/// term is a belt-and-braces floor for callers that interned symbols
/// outside the domain; it costs at most a bit or two of width.
pub fn packing_capacity(comp: &Composition, domain: &[Value]) -> usize {
    let max_domain = domain.iter().map(|v| v.index()).max().unwrap_or(0);
    let max_symbol = comp.symbols.len().saturating_sub(1);
    max_domain.max(max_symbol) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_model::{CompositionBuilder, QueueKind};

    #[test]
    fn heuristic_counts_inputs_and_closure_vars() {
        let mut b = CompositionBuilder::new();
        b.channel("q", 2, QueueKind::Flat, "P", "R");
        b.peer("P")
            .database("d", 2)
            .input("pick", 2)
            .input_rule("pick", &["x", "y"], "d(x, y)")
            .send_rule("q", &["x", "y"], "pick(x, y)");
        b.peer("R");
        let comp = b.build().unwrap();
        let sentence = ddws_logic::LtlFoSentence {
            universal_vars: vec![ddws_logic::VarId(0)],
            body: ddws_logic::LtlFo::tt(),
        };
        // 1 closure variable + max input arity 2.
        assert_eq!(suggested_fresh_values(&comp, &sentence), 3);
    }
}
