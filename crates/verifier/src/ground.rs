//! Grounding: LTL-FO → propositional LTL over snapshot atoms.
//!
//! After the universal closure is instantiated, every maximal FO subformula
//! of the property is a *sentence* evaluated on single snapshots. Each
//! distinct ground sentence becomes one atomic proposition; the temporal
//! skeleton becomes a propositional [`Ltl`] formula over those
//! propositions, ready for the tableau translation.

use ddws_automata::{Letter, Ltl};
use ddws_logic::{Fo, LtlFo, Valuation, VarId};
use ddws_model::Config;
use ddws_model::{Composition, Database, Mover, SnapshotView};
use ddws_relational::Value;
use std::collections::HashMap;

/// Registry of ground FO snapshot atoms, shared across the formulas of one
/// model-checking run (property + environment spec + protocol guards).
#[derive(Debug, Default)]
pub struct AtomRegistry {
    atoms: Vec<Fo>,
    index: HashMap<Fo, u32>,
}

impl AtomRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a ground FO sentence as an atomic proposition.
    pub fn intern(&mut self, fo: Fo) -> u32 {
        if let Some(&i) = self.index.get(&fo) {
            return i;
        }
        let i = u32::try_from(self.atoms.len()).expect("atom overflow");
        assert!(i < 64, "more than 64 distinct snapshot atoms in one check");
        self.index.insert(fo.clone(), i);
        self.atoms.push(fo);
        i
    }

    /// Appends an atom *without* deduplication, returning its id. Used by
    /// protocol checking, where proposition `i` of the automaton must map
    /// to symbol `i` even when two symbols happen to ground to the same
    /// formula.
    pub fn push(&mut self, fo: Fo) -> u32 {
        let i = u32::try_from(self.atoms.len()).expect("atom overflow");
        assert!(i < 64, "more than 64 distinct snapshot atoms in one check");
        self.atoms.push(fo);
        i
    }

    /// The interned atoms, in id order.
    pub fn atoms(&self) -> &[Fo] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether no atom is interned.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates every atom on a snapshot, producing the letter the
    /// property automaton reads.
    pub fn letter(
        &self,
        comp: &Composition,
        db: &dyn Database,
        config: &Config,
        mover: Option<Mover>,
        domain: &[Value],
    ) -> Letter {
        self.letter_view(&SnapshotView::new(comp, db, config, mover, domain))
    }

    /// Evaluates every atom over an arbitrary snapshot [`Structure`] — the
    /// legacy [`SnapshotView`] or the compact representation's
    /// [`CompactView`](ddws_model::CompactView), which answers atom
    /// lookups from packed codes without materializing a [`Config`].
    ///
    /// [`Structure`]: ddws_logic::Structure
    pub fn letter_view<S: ddws_logic::Structure + ?Sized>(&self, view: &S) -> Letter {
        let mut val = Valuation::with_capacity(0);
        let mut letter: Letter = 0;
        for (i, atom) in self.atoms.iter().enumerate() {
            if ddws_logic::eval_fo(atom, view, &mut val) {
                letter |= 1 << i;
            }
        }
        letter
    }
}

/// Grounds an LTL-FO formula under a valuation of its free variables,
/// interning its FO leaves into `reg`.
pub fn ground_ltlfo(f: &LtlFo, valuation: &HashMap<VarId, Value>, reg: &mut AtomRegistry) -> Ltl {
    match f {
        LtlFo::Fo(fo) => {
            // Constant leaves (the `true` of `F φ = true U φ`, …) stay
            // propositional constants instead of wasting atom slots.
            match fo {
                ddws_logic::Fo::True => return Ltl::True,
                ddws_logic::Fo::False => return Ltl::False,
                _ => {}
            }
            let ground = fo.substitute(&|v| valuation.get(&v).copied());
            debug_assert!(
                ground.free_vars().is_empty(),
                "property valuation must cover all free variables"
            );
            Ltl::ap(reg.intern(ground))
        }
        LtlFo::Not(g) => Ltl::not(ground_ltlfo(g, valuation, reg)),
        LtlFo::And(gs) => gs
            .iter()
            .map(|g| ground_ltlfo(g, valuation, reg))
            .reduce(Ltl::and)
            .unwrap_or(Ltl::True),
        LtlFo::Or(gs) => gs
            .iter()
            .map(|g| ground_ltlfo(g, valuation, reg))
            .reduce(Ltl::or)
            .unwrap_or(Ltl::False),
        LtlFo::Implies(a, b) => Ltl::implies(
            ground_ltlfo(a, valuation, reg),
            ground_ltlfo(b, valuation, reg),
        ),
        LtlFo::X(g) => Ltl::next(ground_ltlfo(g, valuation, reg)),
        LtlFo::U(a, b) => Ltl::until(
            ground_ltlfo(a, valuation, reg),
            ground_ltlfo(b, valuation, reg),
        ),
    }
}

/// Enumerates valuations of `vars` over constants plus fresh values, **up to
/// renaming of the fresh values**.
///
/// Fresh domain values occur in no rule or property, so any permutation of
/// them is an automorphism of the verification instance: a violation under a
/// valuation using fresh values in some order is a violation under the
/// canonical valuation that uses them in first-appearance order. Pruning the
/// non-canonical valuations is therefore sound and complete, and shrinks the
/// `|domain|^k` enumeration substantially when most of the domain is fresh.
pub fn canonical_valuations(
    vars: &[VarId],
    constants: &[Value],
    fresh: &[Value],
) -> Vec<HashMap<VarId, Value>> {
    let mut out: Vec<(HashMap<VarId, Value>, usize)> = vec![(HashMap::new(), 0)];
    for &v in vars {
        let mut next = Vec::new();
        for (m, used_fresh) in &out {
            for &c in constants {
                let mut m2 = m.clone();
                m2.insert(v, c);
                next.push((m2, *used_fresh));
            }
            // Fresh values: only the next unused one (canonical order), plus
            // all already-used ones.
            let available = (*used_fresh + 1).min(fresh.len());
            for (i, &f) in fresh.iter().take(available).enumerate() {
                let mut m2 = m.clone();
                m2.insert(v, f);
                next.push((m2, (*used_fresh).max(i + 1)));
            }
        }
        out = next;
    }
    out.into_iter().map(|(m, _)| m).collect()
}

/// Enumerates all valuations of `vars` over `domain`.
pub fn all_valuations(vars: &[VarId], domain: &[Value]) -> Vec<HashMap<VarId, Value>> {
    let mut out: Vec<HashMap<VarId, Value>> = vec![HashMap::new()];
    for &v in vars {
        let mut next = Vec::with_capacity(out.len() * domain.len());
        for m in &out {
            for &d in domain {
                let mut m2 = m.clone();
                m2.insert(v, d);
                next.push(m2);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddws_logic::parser::{parse_sentence, Resolver};
    use ddws_logic::Vars;
    use ddws_relational::{Symbols, Vocabulary};

    #[test]
    fn grounding_dedups_atoms_across_valuations() {
        let mut voc = Vocabulary::new();
        voc.declare("p", 1).unwrap();
        voc.declare("flag", 0).unwrap();
        let mut vars = Vars::new();
        let mut symbols = Symbols::new();
        let s = {
            let mut r = Resolver {
                voc: &voc,
                vars: &mut vars,
                symbols: &mut symbols,
            };
            parse_sentence("forall x: G (p(x) -> F flag)", &mut r).unwrap()
        };
        let mut reg = AtomRegistry::new();
        let dom = vec![Value(0), Value(1)];
        let vals = all_valuations(&s.universal_vars, &dom);
        assert_eq!(vals.len(), 2);
        for v in &vals {
            ground_ltlfo(&s.body, v, &mut reg);
        }
        // Atoms: p(0), p(1), flag (deduped across the two valuations).
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn all_valuations_counts() {
        let vars = vec![VarId(0), VarId(1)];
        let dom = vec![Value(0), Value(1), Value(2)];
        assert_eq!(all_valuations(&vars, &dom).len(), 9);
        assert_eq!(all_valuations(&[], &dom).len(), 1);
    }
}
