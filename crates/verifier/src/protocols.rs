//! Conversation-protocol checking (Section 4).
//!
//! `C ⊨ (Σ, B)` demands that *every* run's observation trace is accepted by
//! `B`, i.e. `traces(C) ∩ L(B)ᶜ = ∅`. The checker therefore complements the
//! protocol automaton — the cheap two-copy construction when `B` is
//! deterministic, the rank-based construction otherwise — and searches the
//! product exactly as for LTL-FO properties:
//!
//! * **data-agnostic** protocols observe the `received_q` (or, for the
//!   undecidable observer-at-source placement, `sent_q`) propositions
//!   (Theorem 4.2 / 4.3);
//! * **data-aware** protocols evaluate their FO guards on snapshots, with
//!   free guard variables universally instantiated over the verification
//!   domain (Definition 4.4, Theorem 4.5).

use crate::counterexample::Counterexample;
use crate::ground::{canonical_valuations, AtomRegistry};
use crate::oracle::FactUniverse;
use crate::product::{ProductSystem, SharedSearch};
use crate::verify::{
    build_counterexample, Inconclusive, Outcome, Report, Verifier, VerifyError, VerifyOptions,
};
use ddws_automata::complement::{complement, complement_deterministic, complete};
use ddws_automata::emptiness::SearchStats;
use ddws_automata::{Nba, SearchLimits};
use ddws_logic::input_bounded::check_input_bounded_fo;
use ddws_logic::VarId;
use ddws_model::Composition;
use ddws_protocol::{DataAgnosticProtocol, DataAwareProtocol};
use ddws_relational::{Instance, Value};
use ddws_telemetry::AbortReason;
use std::collections::BTreeSet;
use std::time::Instant;

/// Maps a graceful engine stop to the protocol entry points' exit: a
/// `worker_panicked` error, or `Ok` with [`Outcome::Inconclusive`] —
/// either way, exactly one abort report is emitted. Protocol checks never
/// capture checkpoints (complementation and guard grounding are cheap to
/// redo), so the abort is marked non-resumable and a fresh call with
/// laxer limits is the resume path.
#[allow(clippy::too_many_arguments)]
fn protocol_abort(
    reason: AbortReason,
    stats: SearchStats,
    meta: &crate::telemetry::RunMeta,
    opts: &VerifyOptions,
    domain: Vec<Value>,
    valuations_checked: usize,
    shard_valuations: Vec<u64>,
) -> Result<Report, VerifyError> {
    if let AbortReason::WorkerPanicked { worker, payload } = &reason {
        let report = meta.finish_abort(
            opts,
            &reason,
            false,
            &stats,
            domain.len(),
            valuations_checked,
        );
        return Err(VerifyError::WorkerPanicked {
            worker: *worker,
            payload: payload.clone(),
            report: Box::new(report),
        });
    }
    let telemetry = meta.finish_abort(
        opts,
        &reason,
        false,
        &stats,
        domain.len(),
        valuations_checked,
    );
    Ok(Report {
        outcome: Outcome::Inconclusive(Box::new(Inconclusive {
            reason,
            checkpoint: None,
        })),
        stats,
        domain,
        valuations_checked,
        shard_valuations,
        telemetry,
    })
}

/// One product search against the complemented protocol automaton, shaped
/// as a scheduler task: no meters are folded (the caller folds the
/// run-wide [`SharedSearch`] once at the end) and counterexample
/// construction time rides in the verdict, merged into the run's phase
/// only if this task wins.
#[allow(clippy::too_many_arguments)]
fn protocol_search_task(
    comp: &Composition,
    violation_nba: &Nba,
    atoms: AtomRegistry,
    base_db: &Instance,
    universe: &FactUniverse,
    domain: &[Value],
    shared: &SharedSearch,
    valuation: &[(VarId, Value)],
    limits: &SearchLimits,
    opts: &VerifyOptions,
    meta: &crate::telemetry::RunMeta,
) -> crate::scheduler::TaskOutput {
    let system = ProductSystem::new(
        comp,
        base_db,
        universe,
        domain,
        violation_nba,
        &atoms,
        shared,
    );
    let tel = meta.engine_telemetry(opts, shared);
    match crate::parallel::search_product(&system, opts, limits, &tel) {
        Ok((None, stats)) => crate::scheduler::TaskOutput {
            stats,
            verdict: crate::scheduler::TaskVerdict::Holds,
        },
        Ok((Some(lasso), stats)) => {
            let cex_start = Instant::now();
            let vars: Vec<VarId> = valuation.iter().map(|(v, _)| *v).collect();
            let map: std::collections::HashMap<VarId, Value> = valuation.iter().copied().collect();
            let cex: Counterexample = build_counterexample(
                &system,
                base_db,
                universe,
                &vars,
                &map,
                lasso.prefix,
                lasso.cycle,
            );
            crate::scheduler::TaskOutput {
                stats,
                verdict: crate::scheduler::TaskVerdict::Violated {
                    cex: Box::new(cex),
                    cex_ns: cex_start.elapsed().as_nanos() as u64,
                },
            }
        }
        Err(stop) => crate::scheduler::TaskOutput {
            stats: stop.stats,
            verdict: crate::scheduler::TaskVerdict::Stopped {
                reason: stop.reason,
                checkpoint: stop.checkpoint,
            },
        },
    }
}

/// Complements a protocol automaton, preferring the deterministic
/// construction.
fn complement_protocol(nba: &Nba) -> Nba {
    if complete(nba).is_deterministic_complete() {
        complement_deterministic(nba)
    } else {
        complement(nba)
    }
}

impl Verifier {
    /// Checks a data-agnostic conversation protocol (Theorem 4.2 for
    /// observer-at-recipient; observer-at-source is supported but
    /// undecidable in general — bound the search via `opts.max_states`).
    pub fn check_data_agnostic(
        &mut self,
        protocol: &DataAgnosticProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_data_agnostic_inner(protocol, opts);
        self.restore_masks(saved);
        result
    }

    fn check_data_agnostic_inner(
        &mut self,
        protocol: &DataAgnosticProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        if opts.require_input_bounded {
            if let Err(vs) = self.composition().check_input_bounded(opts.ib_options) {
                return Err(VerifyError::NotInputBounded(vs));
            }
        }
        let atoms_fo = protocol.observation_atoms(self.composition());
        let mut observed = BTreeSet::new();
        for fo in &atoms_fo {
            observed.extend(fo.relations());
        }
        self.composition_mut().observe_flags(&observed);
        self.composition_mut().freeze_unobserved(&observed);

        let mut atoms = AtomRegistry::new();
        for fo in atoms_fo {
            atoms.push(fo);
        }
        let mut meta = crate::telemetry::RunMeta::new("protocol_data_agnostic", opts);
        // Protocol checks have no LTL → NBA translation; complementation
        // plays the same role, so it lands in the same phase timer.
        let nba_start = Instant::now();
        let violation_nba = complement_protocol(&protocol.automaton);
        meta.nba_ns += nba_start.elapsed().as_nanos() as u64;
        let domain = self.protocol_domain(opts);
        let limits = meta.limits(opts);
        let (base_db, universe) = self.database_setup_pub(&opts.database, &domain);
        let comp = self.composition();
        let shared = crate::verify::build_shared(comp, opts.rule_eval, opts.state_repr, &domain);
        let out = protocol_search_task(
            comp,
            &violation_nba,
            atoms,
            &base_db,
            &universe,
            &domain,
            &shared,
            &[],
            &limits,
            opts,
            &meta,
        );
        let mut stats = out.stats;
        shared.fold_into(&mut stats);
        match out.verdict {
            crate::scheduler::TaskVerdict::Stopped { reason, .. } => {
                protocol_abort(reason, stats, &meta, opts, domain, 1, vec![1])
            }
            verdict => {
                let outcome = match verdict {
                    crate::scheduler::TaskVerdict::Violated { cex, cex_ns } => {
                        meta.cex_ns += cex_ns;
                        Outcome::Violated(cex)
                    }
                    _ => Outcome::Holds,
                };
                let label = if outcome.holds() { "holds" } else { "violated" };
                let telemetry = meta.finish(opts, label, &stats, domain.len(), 1);
                Ok(Report {
                    outcome,
                    stats,
                    domain,
                    valuations_checked: 1,
                    shard_valuations: vec![1],
                    telemetry,
                })
            }
        }
    }

    /// Checks a data-aware conversation protocol with observer-at-recipient
    /// semantics (Theorem 4.5). Guards must be input-bounded when
    /// `opts.require_input_bounded` is set.
    pub fn check_data_aware(
        &mut self,
        protocol: &DataAwareProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_data_aware_inner(protocol, opts);
        self.restore_masks(saved);
        result
    }

    fn check_data_aware_inner(
        &mut self,
        protocol: &DataAwareProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        if opts.require_input_bounded {
            let mut violations = Vec::new();
            if let Err(vs) = self.composition().check_input_bounded(opts.ib_options) {
                violations.extend(vs);
            }
            for g in &protocol.guards {
                if let Err(vs) = check_input_bounded_fo(g, self.composition(), opts.ib_options) {
                    violations.extend(vs);
                }
            }
            if !violations.is_empty() {
                return Err(VerifyError::NotInputBounded(violations));
            }
        }
        let mut observed = BTreeSet::new();
        for g in &protocol.guards {
            observed.extend(g.relations());
        }
        self.composition_mut().observe_flags(&observed);
        self.composition_mut().freeze_unobserved(&observed);

        let mut meta = crate::telemetry::RunMeta::new("protocol_data_aware", opts);
        let nba_start = Instant::now();
        let violation_nba = complement_protocol(&protocol.automaton);
        meta.nba_ns += nba_start.elapsed().as_nanos() as u64;
        let domain = self.protocol_domain(opts);
        let limits = meta.limits(opts);
        let vars = protocol.free_vars();
        let (constants, fresh) = self.split_domain(&domain);
        let valuations = canonical_valuations(&vars, &constants, &fresh);
        let total = valuations.len();

        // One database setup and one `SharedSearch` span the whole run —
        // the guard valuations share the rule-footprint and interner
        // caches — and the valuations dispatch through the shard
        // scheduler. The deterministic winner rule keeps
        // `valuations_checked` exact under early cancel: a violation or
        // stop at winner index `w` reports `w + 1` attempted valuations,
        // exactly as the sequential loop did.
        let (base_db, universe) = self.database_setup_pub(&opts.database, &domain);
        let comp = self.composition();
        let shared = crate::verify::build_shared(comp, opts.rule_eval, opts.state_repr, &domain);
        let shards = crate::scheduler::effective_shards(opts);
        let task_opts = VerifyOptions {
            threads: crate::scheduler::inner_threads(opts, shards),
            ..opts.clone()
        };
        let deterministic = crate::scheduler::deterministic_mode(opts);
        let tasks: Vec<_> = valuations.into_iter().map(|v| (v, None)).collect();
        let meta_ref: &crate::telemetry::RunMeta = &meta;
        let runner = |valuation: &std::collections::HashMap<VarId, Value>,
                      _resume: Option<ddws_automata::EngineCheckpoint<crate::product::PState>>,
                      limits: &SearchLimits|
         -> crate::scheduler::TaskOutput {
            let mut atoms = AtomRegistry::new();
            for g in &protocol.guards {
                atoms.push(g.substitute(&|v| valuation.get(&v).copied()));
            }
            protocol_search_task(
                comp,
                &violation_nba,
                atoms,
                &base_db,
                &universe,
                &domain,
                &shared,
                &vars.iter().map(|v| (*v, valuation[v])).collect::<Vec<_>>(),
                limits,
                &task_opts,
                meta_ref,
            )
        };
        let outcome =
            crate::scheduler::run_valuation_shards(tasks, shards, &limits, deterministic, runner);
        let fold = |batch: &SearchStats| -> SearchStats {
            let mut stats = *batch;
            shared.fold_into(&mut stats);
            stats
        };
        match outcome {
            crate::scheduler::ShardOutcome::AllHold { stats, per_shard } => {
                let stats = fold(&stats);
                let telemetry = meta.finish(opts, "holds", &stats, domain.len(), total);
                Ok(Report {
                    outcome: Outcome::Holds,
                    stats,
                    domain,
                    valuations_checked: total,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
            crate::scheduler::ShardOutcome::Violated {
                index,
                cex,
                cex_ns,
                stats,
                per_shard,
            } => {
                let stats = fold(&stats);
                meta.cex_ns += cex_ns;
                let valuations_checked = index + 1;
                let telemetry =
                    meta.finish(opts, "violated", &stats, domain.len(), valuations_checked);
                Ok(Report {
                    outcome: Outcome::Violated(cex),
                    stats,
                    domain,
                    valuations_checked,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
            crate::scheduler::ShardOutcome::Stopped {
                index,
                reason,
                stats,
                per_shard,
                ..
            } => {
                let stats = fold(&stats);
                protocol_abort(reason, stats, &meta, opts, domain, index + 1, per_shard)
            }
        }
    }

    /// Domain for protocol checks: rule constants plus fresh values.
    fn protocol_domain(&mut self, opts: &VerifyOptions) -> Vec<Value> {
        let trivially_closed = ddws_logic::LtlFoSentence {
            universal_vars: vec![],
            body: ddws_logic::LtlFo::tt(),
        };
        self.domain_for(&trivially_closed, opts)
    }
}
