//! Conversation-protocol checking (Section 4).
//!
//! `C ⊨ (Σ, B)` demands that *every* run's observation trace is accepted by
//! `B`, i.e. `traces(C) ∩ L(B)ᶜ = ∅`. The checker therefore complements the
//! protocol automaton — the cheap two-copy construction when `B` is
//! deterministic, the rank-based construction otherwise — and searches the
//! product exactly as for LTL-FO properties:
//!
//! * **data-agnostic** protocols observe the `received_q` (or, for the
//!   undecidable observer-at-source placement, `sent_q`) propositions
//!   (Theorem 4.2 / 4.3);
//! * **data-aware** protocols evaluate their FO guards on snapshots, with
//!   free guard variables universally instantiated over the verification
//!   domain (Definition 4.4, Theorem 4.5).

use crate::counterexample::Counterexample;
use crate::ground::{canonical_valuations, AtomRegistry};
use crate::product::{PState, ProductSystem};
use crate::verify::{
    build_counterexample, Inconclusive, Outcome, Report, Verifier, VerifyError, VerifyOptions,
};
use ddws_automata::complement::{complement, complement_deterministic, complete};
use ddws_automata::emptiness::SearchStats;
use ddws_automata::{Interrupted, Nba, SearchLimits};
use ddws_logic::input_bounded::check_input_bounded_fo;
use ddws_protocol::{DataAgnosticProtocol, DataAwareProtocol};
use ddws_relational::Value;
use ddws_telemetry::AbortReason;
use std::collections::BTreeSet;
use std::time::Instant;

/// Maps a graceful engine stop to the protocol entry points' exit: a
/// `worker_panicked` error, or `Ok` with [`Outcome::Inconclusive`] —
/// either way, exactly one abort report is emitted. Protocol checks never
/// capture checkpoints (complementation and guard grounding are cheap to
/// redo), so the abort is marked non-resumable and a fresh call with
/// laxer limits is the resume path.
fn protocol_abort(
    reason: AbortReason,
    stats: SearchStats,
    meta: &crate::telemetry::RunMeta,
    opts: &VerifyOptions,
    domain: Vec<Value>,
    valuations_checked: usize,
) -> Result<Report, VerifyError> {
    if let AbortReason::WorkerPanicked { worker, payload } = &reason {
        let report = meta.finish_abort(
            opts,
            &reason,
            false,
            &stats,
            domain.len(),
            valuations_checked,
        );
        return Err(VerifyError::WorkerPanicked {
            worker: *worker,
            payload: payload.clone(),
            report: Box::new(report),
        });
    }
    let telemetry = meta.finish_abort(
        opts,
        &reason,
        false,
        &stats,
        domain.len(),
        valuations_checked,
    );
    Ok(Report {
        outcome: Outcome::Inconclusive(Box::new(Inconclusive {
            reason,
            checkpoint: None,
        })),
        stats,
        domain,
        valuations_checked,
        telemetry,
    })
}

/// Complements a protocol automaton, preferring the deterministic
/// construction.
fn complement_protocol(nba: &Nba) -> Nba {
    if complete(nba).is_deterministic_complete() {
        complement_deterministic(nba)
    } else {
        complement(nba)
    }
}

impl Verifier {
    /// Checks a data-agnostic conversation protocol (Theorem 4.2 for
    /// observer-at-recipient; observer-at-source is supported but
    /// undecidable in general — bound the search via `opts.max_states`).
    pub fn check_data_agnostic(
        &mut self,
        protocol: &DataAgnosticProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_data_agnostic_inner(protocol, opts);
        self.restore_masks(saved);
        result
    }

    fn check_data_agnostic_inner(
        &mut self,
        protocol: &DataAgnosticProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        if opts.require_input_bounded {
            if let Err(vs) = self.composition().check_input_bounded(opts.ib_options) {
                return Err(VerifyError::NotInputBounded(vs));
            }
        }
        let atoms_fo = protocol.observation_atoms(self.composition());
        let mut observed = BTreeSet::new();
        for fo in &atoms_fo {
            observed.extend(fo.relations());
        }
        self.composition_mut().observe_flags(&observed);
        self.composition_mut().freeze_unobserved(&observed);

        let mut atoms = AtomRegistry::new();
        for fo in atoms_fo {
            atoms.push(fo);
        }
        let mut meta = crate::telemetry::RunMeta::new("protocol_data_agnostic", opts);
        // Protocol checks have no LTL → NBA translation; complementation
        // plays the same role, so it lands in the same phase timer.
        let nba_start = Instant::now();
        let violation_nba = complement_protocol(&protocol.automaton);
        meta.nba_ns += nba_start.elapsed().as_nanos() as u64;
        let domain = self.protocol_domain(opts);
        let limits = meta.limits(opts);
        let (outcome, stats) = match self.run_protocol_search(
            &violation_nba,
            atoms,
            &domain,
            &[],
            &limits,
            opts,
            &mut meta,
        ) {
            Ok(found) => found,
            Err(stop) => return protocol_abort(stop.reason, stop.stats, &meta, opts, domain, 1),
        };
        let label = if outcome.holds() { "holds" } else { "violated" };
        let telemetry = meta.finish(opts, label, &stats, domain.len(), 1);
        Ok(Report {
            outcome,
            stats,
            domain,
            valuations_checked: 1,
            telemetry,
        })
    }

    /// Checks a data-aware conversation protocol with observer-at-recipient
    /// semantics (Theorem 4.5). Guards must be input-bounded when
    /// `opts.require_input_bounded` is set.
    pub fn check_data_aware(
        &mut self,
        protocol: &DataAwareProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_data_aware_inner(protocol, opts);
        self.restore_masks(saved);
        result
    }

    fn check_data_aware_inner(
        &mut self,
        protocol: &DataAwareProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        if opts.require_input_bounded {
            let mut violations = Vec::new();
            if let Err(vs) = self.composition().check_input_bounded(opts.ib_options) {
                violations.extend(vs);
            }
            for g in &protocol.guards {
                if let Err(vs) = check_input_bounded_fo(g, self.composition(), opts.ib_options) {
                    violations.extend(vs);
                }
            }
            if !violations.is_empty() {
                return Err(VerifyError::NotInputBounded(violations));
            }
        }
        let mut observed = BTreeSet::new();
        for g in &protocol.guards {
            observed.extend(g.relations());
        }
        self.composition_mut().observe_flags(&observed);
        self.composition_mut().freeze_unobserved(&observed);

        let mut meta = crate::telemetry::RunMeta::new("protocol_data_aware", opts);
        let nba_start = Instant::now();
        let violation_nba = complement_protocol(&protocol.automaton);
        meta.nba_ns += nba_start.elapsed().as_nanos() as u64;
        let domain = self.protocol_domain(opts);
        let limits = meta.limits(opts);
        let vars = protocol.free_vars();
        let (constants, fresh) = self.split_domain(&domain);
        let mut stats = SearchStats::default();
        let mut valuations_checked = 0usize;
        for valuation in canonical_valuations(&vars, &constants, &fresh) {
            valuations_checked += 1;
            let mut atoms = AtomRegistry::new();
            for g in &protocol.guards {
                atoms.push(g.substitute(&|v| valuation.get(&v).copied()));
            }
            let (outcome, s) = match self.run_protocol_search(
                &violation_nba,
                atoms,
                &domain,
                &vars.iter().map(|v| (*v, valuation[v])).collect::<Vec<_>>(),
                &limits,
                opts,
                &mut meta,
            ) {
                Ok(found) => found,
                Err(stop) => {
                    stats.absorb(&stop.stats);
                    return protocol_abort(
                        stop.reason,
                        stats,
                        &meta,
                        opts,
                        domain,
                        valuations_checked,
                    );
                }
            };
            stats.absorb(&s);
            if let Outcome::Violated(cex) = outcome {
                let telemetry =
                    meta.finish(opts, "violated", &stats, domain.len(), valuations_checked);
                return Ok(Report {
                    outcome: Outcome::Violated(cex),
                    stats,
                    domain,
                    valuations_checked,
                    telemetry,
                });
            }
        }
        let telemetry = meta.finish(opts, "holds", &stats, domain.len(), valuations_checked);
        Ok(Report {
            outcome: Outcome::Holds,
            stats,
            domain,
            valuations_checked,
            telemetry,
        })
    }

    /// Domain for protocol checks: rule constants plus fresh values.
    fn protocol_domain(&mut self, opts: &VerifyOptions) -> Vec<Value> {
        let trivially_closed = ddws_logic::LtlFoSentence {
            universal_vars: vec![],
            body: ddws_logic::LtlFo::tt(),
        };
        self.domain_for(&trivially_closed, opts)
    }

    /// One product search against the complemented protocol. Returns the
    /// per-search outcome and stats (rule and phase meters from the
    /// search-local `SharedSearch` already folded in — including into an
    /// interrupted stop's stats, so callers can aggregate either way).
    #[allow(clippy::too_many_arguments)]
    fn run_protocol_search(
        &mut self,
        violation_nba: &Nba,
        atoms: AtomRegistry,
        domain: &[Value],
        valuation: &[(ddws_logic::VarId, Value)],
        limits: &SearchLimits,
        opts: &VerifyOptions,
        meta: &mut crate::telemetry::RunMeta,
    ) -> Result<(Outcome, SearchStats), Box<Interrupted<PState>>> {
        let (base_db, universe) = self.database_setup_pub(&opts.database, domain);
        let comp = self.composition();
        let shared = crate::verify::build_shared(comp, opts.rule_eval, opts.state_repr, domain);
        let system = ProductSystem::new(
            comp,
            &base_db,
            &universe,
            domain,
            violation_nba,
            &atoms,
            &shared,
        );
        let tel = meta.engine_telemetry(opts, &shared);
        let (lasso, mut stats) = match crate::parallel::search_product(&system, opts, limits, &tel)
        {
            Ok(found) => found,
            Err(mut stop) => {
                shared.fold_into(&mut stop.stats);
                return Err(stop);
            }
        };
        shared.fold_into(&mut stats);
        let outcome = match lasso {
            None => Outcome::Holds,
            Some(lasso) => {
                let cex_start = Instant::now();
                let vars: Vec<ddws_logic::VarId> = valuation.iter().map(|(v, _)| *v).collect();
                let map: std::collections::HashMap<ddws_logic::VarId, Value> =
                    valuation.iter().copied().collect();
                let cex: Counterexample = build_counterexample(
                    &system,
                    &base_db,
                    &universe,
                    &vars,
                    &map,
                    lasso.prefix,
                    lasso.cycle,
                );
                meta.cex_ns += cex_start.elapsed().as_nanos() as u64;
                Outcome::Violated(Box::new(cex))
            }
        };
        Ok((outcome, stats))
    }
}
