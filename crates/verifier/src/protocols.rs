//! Conversation-protocol checking (Section 4).
//!
//! `C ⊨ (Σ, B)` demands that *every* run's observation trace is accepted by
//! `B`, i.e. `traces(C) ∩ L(B)ᶜ = ∅`. The checker therefore complements the
//! protocol automaton — the cheap two-copy construction when `B` is
//! deterministic, the rank-based construction otherwise — and searches the
//! product exactly as for LTL-FO properties:
//!
//! * **data-agnostic** protocols observe the `received_q` (or, for the
//!   undecidable observer-at-source placement, `sent_q`) propositions
//!   (Theorem 4.2 / 4.3);
//! * **data-aware** protocols evaluate their FO guards on snapshots, with
//!   free guard variables universally instantiated over the verification
//!   domain (Definition 4.4, Theorem 4.5).

use crate::counterexample::Counterexample;
use crate::ground::{canonical_valuations, AtomRegistry};
use crate::product::{ProductSystem, SharedSearch};
use crate::verify::{
    build_counterexample, Outcome, Report, RuleEval, Verifier, VerifyError, VerifyOptions,
};
use ddws_automata::complement::{complement, complement_deterministic, complete};
use ddws_automata::emptiness::SearchStats;
use ddws_automata::Nba;
use ddws_logic::input_bounded::check_input_bounded_fo;
use ddws_protocol::{DataAgnosticProtocol, DataAwareProtocol};
use ddws_relational::Value;
use std::collections::BTreeSet;

/// Complements a protocol automaton, preferring the deterministic
/// construction.
fn complement_protocol(nba: &Nba) -> Nba {
    if complete(nba).is_deterministic_complete() {
        complement_deterministic(nba)
    } else {
        complement(nba)
    }
}

impl Verifier {
    /// Checks a data-agnostic conversation protocol (Theorem 4.2 for
    /// observer-at-recipient; observer-at-source is supported but
    /// undecidable in general — bound the search via `opts.max_states`).
    pub fn check_data_agnostic(
        &mut self,
        protocol: &DataAgnosticProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_data_agnostic_inner(protocol, opts);
        self.restore_masks(saved);
        result
    }

    fn check_data_agnostic_inner(
        &mut self,
        protocol: &DataAgnosticProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        if opts.require_input_bounded {
            if let Err(vs) = self.composition().check_input_bounded(opts.ib_options) {
                return Err(VerifyError::NotInputBounded(vs));
            }
        }
        let atoms_fo = protocol.observation_atoms(self.composition());
        let mut observed = BTreeSet::new();
        for fo in &atoms_fo {
            observed.extend(fo.relations());
        }
        self.composition_mut().observe_flags(&observed);
        self.composition_mut().freeze_unobserved(&observed);

        let mut atoms = AtomRegistry::new();
        for fo in atoms_fo {
            atoms.push(fo);
        }
        let violation_nba = complement_protocol(&protocol.automaton);
        let domain = self.protocol_domain(opts);
        self.run_protocol_search(&violation_nba, atoms, &domain, &[], opts)
    }

    /// Checks a data-aware conversation protocol with observer-at-recipient
    /// semantics (Theorem 4.5). Guards must be input-bounded when
    /// `opts.require_input_bounded` is set.
    pub fn check_data_aware(
        &mut self,
        protocol: &DataAwareProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_data_aware_inner(protocol, opts);
        self.restore_masks(saved);
        result
    }

    fn check_data_aware_inner(
        &mut self,
        protocol: &DataAwareProtocol,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        if opts.require_input_bounded {
            let mut violations = Vec::new();
            if let Err(vs) = self.composition().check_input_bounded(opts.ib_options) {
                violations.extend(vs);
            }
            for g in &protocol.guards {
                if let Err(vs) = check_input_bounded_fo(g, self.composition(), opts.ib_options) {
                    violations.extend(vs);
                }
            }
            if !violations.is_empty() {
                return Err(VerifyError::NotInputBounded(violations));
            }
        }
        let mut observed = BTreeSet::new();
        for g in &protocol.guards {
            observed.extend(g.relations());
        }
        self.composition_mut().observe_flags(&observed);
        self.composition_mut().freeze_unobserved(&observed);

        let violation_nba = complement_protocol(&protocol.automaton);
        let domain = self.protocol_domain(opts);
        let vars = protocol.free_vars();
        let (constants, fresh) = self.split_domain(&domain);
        let mut total = Report {
            outcome: Outcome::Holds,
            stats: SearchStats::default(),
            domain: domain.clone(),
            valuations_checked: 0,
        };
        for valuation in canonical_valuations(&vars, &constants, &fresh) {
            total.valuations_checked += 1;
            let mut atoms = AtomRegistry::new();
            for g in &protocol.guards {
                atoms.push(g.substitute(&|v| valuation.get(&v).copied()));
            }
            match self.run_protocol_search(
                &violation_nba,
                atoms,
                &domain,
                &vars.iter().map(|v| (*v, valuation[v])).collect::<Vec<_>>(),
                opts,
            )? {
                Report {
                    outcome: Outcome::Violated(cex),
                    stats,
                    ..
                } => {
                    total.stats.absorb(&stats);
                    total.outcome = Outcome::Violated(cex);
                    return Ok(total);
                }
                Report { stats, .. } => {
                    total.stats.absorb(&stats);
                }
            }
        }
        Ok(total)
    }

    /// Domain for protocol checks: rule constants plus fresh values.
    fn protocol_domain(&mut self, opts: &VerifyOptions) -> Vec<Value> {
        let trivially_closed = ddws_logic::LtlFoSentence {
            universal_vars: vec![],
            body: ddws_logic::LtlFo::tt(),
        };
        self.domain_for(&trivially_closed, opts)
    }

    fn run_protocol_search(
        &mut self,
        violation_nba: &Nba,
        atoms: AtomRegistry,
        domain: &[Value],
        valuation: &[(ddws_logic::VarId, Value)],
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let (base_db, universe) = self.database_setup_pub(&opts.database, domain);
        let comp = self.composition();
        let shared = match opts.rule_eval {
            RuleEval::Compiled => SharedSearch::compiled(comp),
            RuleEval::Interpreted => SharedSearch::interpreted_metered(),
        };
        let system = ProductSystem::new(
            comp,
            &base_db,
            &universe,
            domain,
            violation_nba,
            &atoms,
            &shared,
        );
        let (lasso, mut stats) = crate::parallel::search_product(&system, opts)?;
        (
            stats.rule_cache_hits,
            stats.rule_cache_misses,
            stats.rule_eval_ns,
        ) = shared.rule_stats();
        let outcome = match lasso {
            None => Outcome::Holds,
            Some(lasso) => {
                let vars: Vec<ddws_logic::VarId> = valuation.iter().map(|(v, _)| *v).collect();
                let map: std::collections::HashMap<ddws_logic::VarId, Value> =
                    valuation.iter().copied().collect();
                let cex: Counterexample = build_counterexample(
                    &system,
                    &base_db,
                    &universe,
                    &vars,
                    &map,
                    lasso.prefix,
                    lasso.cycle,
                );
                Outcome::Violated(Box::new(cex))
            }
        };
        Ok(Report {
            outcome,
            stats,
            domain: domain.to_vec(),
            valuations_checked: 1,
        })
    }
}
