//! # `ddws-verifier` — the model checker
//!
//! Sound and complete verification of input-bounded compositions with
//! bounded lossy queues against input-bounded LTL-FO properties — the
//! decidable regime of **Theorem 3.4** — via automata-theoretic model
//! checking over the *small verification domain* implied by
//! input-boundedness:
//!
//! 1. the universal closure of the property is instantiated over the
//!    domain ([`ground`]);
//! 2. each ground maximal FO subformula becomes one atomic proposition,
//!    the temporal skeleton of the *negated* property is translated to a
//!    Büchi automaton (`ddws-automata`);
//! 3. the synchronous product of the composition's run graph with that
//!    automaton is searched on-the-fly for an accepting lasso
//!    ([`product`], nested DFS);
//! 4. the ∃-quantification over databases is resolved *lazily*: database
//!    facts start undecided and the search branches on a fact the first
//!    time a rule or property atom touches it ([`oracle`]) — the fragment
//!    of the database a counterexample actually reads is typically tiny
//!    compared to the `2^{|domain|^arity}` instances eager enumeration
//!    would visit.
//!
//! A found lasso is returned as a [`Counterexample`] (database, valuation,
//! run prefix + cycle); absence of a lasso for every valuation and every
//! database over the domain means the property holds at that domain bound
//! (and, by the small-model property of input-bounded specifications, at
//! every domain once the bound is large enough).
//!
//! The crate also implements:
//!
//! * [`modular`] — modular verification (§5, Theorem 5.4): environment
//!   specs, the `Xα`/`Uα` relativization to `moveE` and the
//!   observer-at-recipient translation with `received_q`;
//! * [`reduction`] — the composition → single-peer-with-lookback reduction
//!   behind the proof of Theorem 3.4, testable for verdict equivalence.

#![warn(missing_docs)]
pub mod counterexample;
pub mod domain;
pub mod ground;
pub mod modular;
pub mod oracle;
pub mod parallel;
pub mod product;
pub mod protocols;
pub mod reduction;
mod scheduler;
mod telemetry;
pub mod verify;

pub use counterexample::{Counterexample, RunStep};
pub use verify::{
    Checkpoint, DatabaseMode, Inconclusive, Outcome, Reduction, Report, RuleEval, StateRepr,
    Verifier, VerifyError, VerifyOptions,
};

// Clock surface, re-exported so downstream users (and the deterministic
// simulator) can inject virtual time into [`VerifyOptions::clock`]
// without depending on `ddws-automata` directly.
pub use ddws_automata::{wall_clock, Clock, ClockHandle, ManualClock, WallClock};

// Telemetry surface, re-exported so downstream users configure reporting
// and run control without depending on `ddws-telemetry` directly.
pub use ddws_telemetry::{
    validate_run_report, Abort, AbortReason, BufferReporter, CancelToken, Counters, FaultHook,
    HumanReporter, JsonLinesReporter, PhaseTimes, Progress, Reporter, ReporterHandle, RunReport,
    Silent, StreamReporter, TelemetryEvent, MIN_SCHEMA_VERSION, SCHEMA_NAME, SCHEMA_VERSION,
};
