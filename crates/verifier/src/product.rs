//! The on-the-fly product of a composition's run graph with a property
//! automaton, threaded through the lazy database oracle.
//!
//! States are `(configuration, mover, automaton state, partial database)`
//! tuples, interned to small ids. Three kinds of edges:
//!
//! * **boot** edges resolve the initial configurations,
//! * **fork** edges split on an undecided database fact (strictly growing
//!   the oracle, hence acyclic),
//! * **step** edges perform one serialized composition move while the
//!   automaton reads the current snapshot's letter.
//!
//! Acceptance is inherited from the automaton component, so an accepting
//! lasso of this system is exactly a counterexample run over the database
//! its oracle describes.
//!
//! All caches are sharded behind `RwLock`s so one `ProductSystem` can be
//! expanded from many worker threads at once (see
//! [`parallel`](crate::parallel)). Cached values are pure functions of
//! their keys, so the benign race — two threads computing the same entry
//! before either publishes it — wastes a little work but never changes a
//! result.

use crate::ground::AtomRegistry;
use crate::oracle::{FactUniverse, Oracle, RecordingDb};
use ddws_automata::{Expansion, Nba, TransitionSystem};
use ddws_model::{
    CompactConfig, CompactView, CompiledRules, Composition, Config, EvalCtx, IndependenceOracle,
    Mover, RuleCache, StatePool,
};
use ddws_relational::{Instance, Interner as MeteredInterner, Value};
use ddws_telemetry::{RuleMeterSource, SearchStats};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A state of the product system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PState {
    /// Initial configurations not yet resolved (the oracle may need to
    /// decide facts that input rules touch).
    Boot {
        /// Interned oracle id.
        oracle: u32,
    },
    /// A running snapshot.
    Run {
        /// Interned configuration id.
        config: u32,
        /// The peer (or environment) taking the next step; `moveW` of this
        /// snapshot.
        mover: Mover,
        /// Property-automaton state.
        q: usize,
        /// Interned oracle id.
        oracle: u32,
    },
}

/// Shard count for the interners and caches: enough to keep lock
/// contention low at the thread counts the engine targets (≤ 32 workers)
/// without wasting memory on sequential runs.
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// A deterministic shard index (`DefaultHasher::new()` is keyless, unlike
/// `RandomState`, so shard layout is stable across runs).
fn shard_of<T: Hash>(item: &T) -> usize {
    let mut h = DefaultHasher::new();
    item.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

struct InternerShard<T> {
    items: Vec<Arc<T>>,
    ids: HashMap<Arc<T>, u32>,
}

impl<T> Default for InternerShard<T> {
    fn default() -> Self {
        InternerShard {
            items: Vec::new(),
            ids: HashMap::new(),
        }
    }
}

/// Thread-safe interner for hash-heavy values (configurations, oracles).
///
/// Ids encode their shard in the low [`SHARD_BITS`] bits and the position
/// within the shard above them, so resolution never consults a directory.
struct Interner<T> {
    shards: Vec<RwLock<InternerShard<T>>>,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            shards: (0..SHARDS).map(|_| RwLock::default()).collect(),
        }
    }
}

impl<T: Hash + Eq> Interner<T> {
    fn intern(&self, item: T) -> u32 {
        let sh = shard_of(&item);
        {
            let shard = self.shards[sh].read().expect("interner shard poisoned");
            if let Some(&id) = shard.ids.get(&item) {
                return id;
            }
        }
        let mut shard = self.shards[sh].write().expect("interner shard poisoned");
        if let Some(&id) = shard.ids.get(&item) {
            return id;
        }
        let local = u32::try_from(shard.items.len()).expect("interner overflow");
        let id = (local << SHARD_BITS) | sh as u32;
        assert!(id >> SHARD_BITS == local, "interner overflow");
        let arc = Arc::new(item);
        shard.items.push(Arc::clone(&arc));
        shard.ids.insert(arc, id);
        id
    }

    fn get(&self, id: u32) -> Arc<T> {
        let shard = self.shards[id as usize & (SHARDS - 1)]
            .read()
            .expect("interner shard poisoned");
        Arc::clone(&shard.items[(id >> SHARD_BITS) as usize])
    }

    fn approx_bytes(&self, cost: impl Fn(&T) -> usize) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("interner shard poisoned")
                    .items
                    .iter()
                    .map(|item| cost(item))
                    .sum::<usize>()
            })
            .sum()
    }
}

/// A sharded `HashMap` cache; values are cloned out under a read lock.
/// Callers store `Arc`-wrapped successor sets (`Arc<[u32]>`,
/// `Arc<[PState]>`), so the clone is a refcount bump, never a deep copy of
/// the cached expansion.
struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::default()).collect(),
        }
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    fn get(&self, key: &K) -> Option<V> {
        self.shards[shard_of(key)]
            .read()
            .expect("cache shard poisoned")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: K, value: V) {
        self.shards[shard_of(&key)]
            .write()
            .expect("cache shard poisoned")
            .insert(key, value);
    }
}

/// Successor configs of one cached expansion, or `Err(fact)` when the
/// expansion forks on an undecided database fact.
type StepResult = Result<Arc<[u32]>, usize>;

/// The compact state space of one run: the extension pool (hash-consed
/// relation instances and queue contents, bit-packed where the domain
/// allows) plus the configuration interner mapping [`CompactConfig`]s to
/// the dense ids [`PState`] carries. Both layers meter hits and misses, so
/// `SearchStats`' intern counters satisfy `hits + misses == calls` exactly.
pub(crate) struct CompactSpace {
    pub(crate) pool: StatePool,
    pub(crate) configs: MeteredInterner<CompactConfig>,
}

/// Search state shared across the valuations of one `check` call: the
/// configuration/oracle interners and the composition-step cache. Steps
/// depend only on (config, mover, oracle) — not on the property valuation —
/// so sharing them makes every valuation after the first traverse the
/// already-expanded graph instead of re-evaluating every rule.
#[derive(Default)]
pub struct SharedSearch {
    configs: Interner<Config>,
    /// Compact state space; `Some` routes configurations through the
    /// hash-cons pool and leaves the legacy `configs` interner unused
    /// (`VerifyOptions::state_repr`).
    compact: Option<CompactSpace>,
    oracles: Interner<Oracle>,
    /// (config, mover, oracle) → successor configs (or fork fact).
    steps: ShardedMap<(u32, Mover, u32), StepResult>,
    /// oracle → initial configs (or fork fact).
    boots: ShardedMap<u32, StepResult>,
    /// Compiled rule plans; `None` routes rule bodies through the FO
    /// interpreter (the oracle of record).
    compiled: Option<CompiledRules>,
    /// Footprint-keyed rule memo table and rule-evaluation metrics; `None`
    /// leaves evaluation unmetered (the pre-compilation behaviour).
    rule_cache: Option<RuleCache>,
    /// Nanoseconds spent computing fresh boot expansions (cache misses in
    /// `boots` — re-reads cost nothing and are not timed).
    boot_ns: AtomicU64,
    /// Nanoseconds spent computing fresh composition steps (cache misses
    /// in `steps`).
    step_ns: AtomicU64,
}

impl SharedSearch {
    /// Creates an empty shared search state evaluating rules through the
    /// FO interpreter, unmetered — the pre-compilation behaviour.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared state that evaluates rules through compiled join/filter/
    /// project plans with footprint-keyed memoization (the default engine
    /// of [`crate::VerifyOptions`]).
    ///
    /// One `SharedSearch` serves one verification run: the memo table's
    /// soundness requires the quantification domain — and, in compact
    /// mode, the fixed database, whose footprint handle the state pool
    /// caches — to stay fixed for its lifetime.
    pub fn compiled(comp: &Composition) -> Self {
        let compiled = CompiledRules::new(comp);
        let rule_cache = RuleCache::new(&compiled);
        SharedSearch {
            compiled: Some(compiled),
            rule_cache: Some(rule_cache),
            ..Default::default()
        }
    }

    /// Shared state that evaluates rules through the FO interpreter but
    /// still meters evaluation time, so compiled-vs-interpreted timings in
    /// [`ddws_automata::emptiness::SearchStats`] are comparable.
    pub fn interpreted_metered() -> Self {
        SharedSearch {
            rule_cache: Some(RuleCache::timing_only()),
            ..Default::default()
        }
    }

    /// Switches this shared state to the compact (hash-consed, bit-packed)
    /// configuration representation. `value_capacity` must be one past the
    /// largest [`Value`] index any reachable extension can hold — the
    /// verifier derives it with
    /// [`domain::packing_capacity`](crate::domain::packing_capacity) from
    /// the closed input-bounded domain.
    ///
    /// Like the rule engine, the representation is fixed for the lifetime
    /// of the shared state: configuration ids from one representation are
    /// meaningless in the other.
    pub fn with_compact(mut self, comp: &Composition, value_capacity: usize) -> Self {
        self.compact = Some(CompactSpace {
            pool: StatePool::new(comp, value_capacity),
            configs: MeteredInterner::new(),
        });
        self
    }

    /// Whether this shared state uses the compact representation.
    pub fn is_compact(&self) -> bool {
        self.compact.is_some()
    }

    /// Intern-table counters: (calls, hits, misses) summed over the
    /// extension pool and the configuration interner. All zero under the
    /// legacy representation.
    pub fn intern_stats(&self) -> (u64, u64, u64) {
        match &self.compact {
            Some(space) => {
                let hits = space.pool.intern_hits() + space.configs.hits();
                let misses = space.pool.intern_misses() + space.configs.misses();
                (hits + misses, hits, misses)
            }
            None => (0, 0, 0),
        }
    }

    /// Approximate heap bytes held by the state store — interned
    /// configurations plus (in compact mode) the extension pool. This is
    /// the dominant term of a checkpoint's retained memory, since
    /// [`EngineCheckpoint`](ddws_automata::EngineCheckpoint) frontiers and
    /// visited sets store dense ids.
    pub fn approx_state_bytes(&self) -> usize {
        match &self.compact {
            Some(space) => {
                space.pool.approx_bytes() + space.configs.approx_bytes(CompactConfig::approx_bytes)
            }
            None => self.configs.approx_bytes(Config::approx_bytes),
        }
    }

    /// The rule-evaluation context this shared state configures.
    pub(crate) fn eval_ctx(&self) -> EvalCtx<'_> {
        EvalCtx {
            compiled: self.compiled.as_ref(),
            cache: self.rule_cache.as_ref(),
        }
    }

    /// Accumulated rule-evaluation metrics: (cache hits, cache misses,
    /// nanoseconds spent evaluating rules). All zero when unmetered.
    pub fn rule_stats(&self) -> (u64, u64, u64) {
        match &self.rule_cache {
            Some(c) => (c.hits(), c.misses(), c.eval_ns()),
            None => (0, 0, 0),
        }
    }

    /// Writes this shared state's accumulated meters — rule-cache counts,
    /// rule-evaluation time, boot and successor phase spans — into `stats`.
    ///
    /// The write *overwrites* (rather than adds): one `SharedSearch` spans
    /// every valuation of a run, so its counters are already run totals.
    /// Callers that build a fresh `SharedSearch` per sub-search fold each
    /// one and then `absorb` the per-search stats as usual.
    pub fn fold_into(&self, stats: &mut SearchStats) {
        if let Some(c) = &self.rule_cache {
            stats.rule_evals = c.evals();
            stats.rule_cache_hits = c.hits();
            stats.rule_cache_misses = c.misses();
            stats.rule_eval_ns = c.eval_ns();
        }
        stats.boot_ns = self.boot_ns.load(Ordering::Relaxed);
        stats.successor_ns = self.step_ns.load(Ordering::Relaxed);
        let (calls, hits, misses) = self.intern_stats();
        stats.intern_calls = calls;
        stats.intern_hits = hits;
        stats.intern_misses = misses;
    }
}

impl RuleMeterSource for SharedSearch {
    fn rule_cache_counts(&self) -> (u64, u64) {
        match &self.rule_cache {
            Some(c) => (c.hits(), c.misses()),
            None => (0, 0),
        }
    }
}

/// The product system.
pub struct ProductSystem<'a> {
    /// The composition under verification.
    pub comp: &'a Composition,
    /// Fixed database facts (outside the oracle universe).
    pub base_db: &'a Instance,
    /// Candidate facts subject to lazy decisions (empty for fixed-database
    /// verification).
    pub universe: &'a FactUniverse,
    /// The verification domain.
    pub domain: &'a [Value],
    /// Automaton for the *negated* property (or the protocol complement).
    pub nba: &'a Nba,
    /// The snapshot atoms the automaton's propositions refer to.
    pub atoms: &'a AtomRegistry,
    shared: &'a SharedSearch,
    // The nested DFS expands every state twice (blue + red pass); successor
    // computation dominates, so memoize the full product expansion too.
    succ_cache: ShardedMap<PState, Arc<[PState]>>,
    /// Ample-set reduction; `None` explores every interleaving.
    reduction: Option<&'a IndependenceOracle>,
    /// Memoized reduced expansions (separate from `succ_cache`: the C3
    /// fallback needs the *full* expansion of the same state).
    ample_cache: ShardedMap<PState, (Arc<[PState]>, bool)>,
}

impl<'a> ProductSystem<'a> {
    /// Builds the product system.
    pub fn new(
        comp: &'a Composition,
        base_db: &'a Instance,
        universe: &'a FactUniverse,
        domain: &'a [Value],
        nba: &'a Nba,
        atoms: &'a AtomRegistry,
        shared: &'a SharedSearch,
    ) -> Self {
        ProductSystem {
            comp,
            base_db,
            universe,
            domain,
            nba,
            atoms,
            shared,
            succ_cache: ShardedMap::default(),
            reduction: None,
            ample_cache: ShardedMap::default(),
        }
    }

    /// Activates the ample-set reduction: the engines route expansions
    /// through [`TransitionSystem::successors_reduced`] and enforce the C3
    /// cycle proviso. The oracle may still decline every configuration
    /// (no statically independent mover), in which case expansions are
    /// full but counted in `SearchStats::full_expansions`.
    pub fn with_reduction(mut self, oracle: &'a IndependenceOracle) -> Self {
        self.reduction = Some(oracle);
        self
    }

    /// Resolves an interned configuration, materializing it from the
    /// compact pool when that representation is active. Hot paths never
    /// call this in compact mode (letters and steps work on handles); it
    /// serves counterexample reconstruction and display.
    pub fn config(&self, id: u32) -> Arc<Config> {
        match &self.shared.compact {
            Some(space) => Arc::new(space.pool.expand(self.comp, &space.configs.resolve(id))),
            None => self.shared.configs.get(id),
        }
    }

    /// Resolves an interned oracle.
    pub fn oracle(&self, id: u32) -> Arc<Oracle> {
        self.shared.oracles.get(id)
    }

    fn intern_config(&self, c: Config) -> u32 {
        self.shared.configs.intern(c)
    }

    fn intern_oracle(&self, o: Oracle) -> u32 {
        self.shared.oracles.intern(o)
    }

    /// Initial configurations for an oracle, cached across valuations.
    fn boot_configs(&self, oracle: u32) -> StepResult {
        if let Some(cached) = self.shared.boots.get(&oracle) {
            return cached;
        }
        let start = Instant::now();
        let o = self.oracle(oracle);
        let db = RecordingDb::new(self.base_db, self.universe, &o);
        let result = match &self.shared.compact {
            Some(space) => {
                let configs =
                    space
                        .pool
                        .initial_configs(self.comp, &db, self.domain, self.shared.eval_ctx());
                match db.undecided_hit() {
                    Some(fact) => Err(fact),
                    None => Ok(configs
                        .into_iter()
                        .map(|c| space.configs.intern(c))
                        .collect()),
                }
            }
            None => {
                let configs =
                    self.comp
                        .initial_configs_with(&db, self.domain, self.shared.eval_ctx());
                match db.undecided_hit() {
                    Some(fact) => Err(fact),
                    None => Ok(configs.into_iter().map(|c| self.intern_config(c)).collect()),
                }
            }
        };
        self.shared.boots.insert(oracle, result.clone());
        self.shared
            .boot_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    /// One composition step, cached across valuations.
    fn step_configs(&self, config: u32, mover: Mover, oracle: u32) -> StepResult {
        let key = (config, mover, oracle);
        if let Some(cached) = self.shared.steps.get(&key) {
            return cached;
        }
        let start = Instant::now();
        let o = self.oracle(oracle);
        let db = RecordingDb::new(self.base_db, self.universe, &o);
        let result = match &self.shared.compact {
            Some(space) => {
                let cc = space.configs.resolve(config);
                let next = space.pool.successors(
                    self.comp,
                    &db,
                    self.domain,
                    &cc,
                    mover,
                    self.shared.eval_ctx(),
                );
                match db.undecided_hit() {
                    Some(fact) => Err(fact),
                    None => Ok(next.into_iter().map(|c| space.configs.intern(c)).collect()),
                }
            }
            None => {
                let cfg = self.config(config);
                let next = self.comp.successors_with(
                    &db,
                    self.domain,
                    &cfg,
                    mover,
                    self.shared.eval_ctx(),
                );
                match db.undecided_hit() {
                    Some(fact) => Err(fact),
                    None => Ok(next.into_iter().map(|c| self.intern_config(c)).collect()),
                }
            }
        };
        self.shared.steps.insert(key, result.clone());
        self.shared
            .step_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }

    /// Forks a state on an undecided fact.
    fn fork(&self, state: PState, oracle_id: u32, fact: usize) -> Vec<PState> {
        let oracle = self.oracle(oracle_id);
        [true, false]
            .into_iter()
            .map(|v| {
                let o2 = self.intern_oracle(oracle.with_decided(fact, v));
                match state {
                    PState::Boot { .. } => PState::Boot { oracle: o2 },
                    PState::Run {
                        config, mover, q, ..
                    } => PState::Run {
                        config,
                        mover,
                        q,
                        oracle: o2,
                    },
                }
            })
            .collect()
    }
}

impl TransitionSystem for ProductSystem<'_> {
    type State = PState;

    fn initial_states(&self) -> Vec<PState> {
        let empty = self.intern_oracle(Oracle::undecided(self.universe.len()));
        vec![PState::Boot { oracle: empty }]
    }

    fn successors(&self, s: &PState) -> Arc<[PState]> {
        if let Some(cached) = self.succ_cache.get(s) {
            return cached;
        }
        let result: Arc<[PState]> = self.expand(s, None).0.into();
        self.succ_cache.insert(*s, result.clone());
        result
    }

    fn is_accepting(&self, s: &PState) -> bool {
        match *s {
            PState::Boot { .. } => false,
            PState::Run { q, .. } => self.nba.accepting[q],
        }
    }

    fn successors_reduced(&self, s: &PState) -> Expansion<PState> {
        let Some(ind) = self.reduction else {
            return Expansion {
                states: self.successors(s),
                ample: false,
            };
        };
        if let Some((states, ample)) = self.ample_cache.get(s) {
            return Expansion { states, ample };
        }
        let (states, ample) = self.expand(s, Some(ind));
        let states: Arc<[PState]> = states.into();
        self.ample_cache.insert(*s, (states.clone(), ample));
        Expansion { states, ample }
    }

    fn reduction_active(&self) -> bool {
        self.reduction.is_some()
    }
}

impl ProductSystem<'_> {
    /// Expands a product state; with `reduce` set, the scheduled movers at
    /// each successor configuration are restricted to its ample mover (the
    /// returned flag reports whether any restriction actually happened).
    ///
    /// Boot and fork edges are never reduced: they resolve initial
    /// configurations and grow the database oracle rather than choose an
    /// interleaving.
    fn expand(&self, s: &PState, reduce: Option<&IndependenceOracle>) -> (Vec<PState>, bool) {
        match *s {
            PState::Boot { oracle } => match self.boot_configs(oracle) {
                Err(fact) => (self.fork(*s, oracle, fact), false),
                Ok(configs) => {
                    let mut out = Vec::new();
                    for &cid in configs.iter() {
                        for mover in self.comp.movers() {
                            for &q in &self.nba.initial {
                                out.push(PState::Run {
                                    config: cid,
                                    mover,
                                    q,
                                    oracle,
                                });
                            }
                        }
                    }
                    (out, false)
                }
            },
            PState::Run {
                config,
                mover,
                q,
                oracle,
            } => {
                // 1. The letter of this snapshot (read off the compact
                //    handles directly when that representation is active —
                //    the per-(config, mover) hot path must not expand).
                let letter = {
                    let o = self.oracle(oracle);
                    let db = RecordingDb::new(self.base_db, self.universe, &o);
                    let letter = match &self.shared.compact {
                        Some(space) => {
                            let cc = space.configs.resolve(config);
                            let view = CompactView::new(
                                &space.pool,
                                self.comp,
                                &db,
                                &cc,
                                Some(mover),
                                self.domain,
                            );
                            self.atoms.letter_view(&view)
                        }
                        None => {
                            let cfg = self.config(config);
                            self.atoms
                                .letter(self.comp, &db, &cfg, Some(mover), self.domain)
                        }
                    };
                    if let Some(fact) = db.undecided_hit() {
                        return (self.fork(*s, oracle, fact), false);
                    }
                    letter
                };

                // 2. Automaton edges admitted by the letter.
                let q_targets: Vec<usize> = self.nba.successors(q, letter).collect();
                if q_targets.is_empty() {
                    return (Vec::new(), false);
                }

                // 3. Composition step (cached across valuations).
                let next_configs = match self.step_configs(config, mover, oracle) {
                    Err(fact) => return (self.fork(*s, oracle, fact), false),
                    Ok(c) => c,
                };

                let movers = self.comp.movers();
                let mut ample = false;
                let mut out =
                    Vec::with_capacity(next_configs.len() * movers.len() * q_targets.len());
                for &cid in next_configs.iter() {
                    // Ample eligibility is configuration-independent
                    // (static footprints), so neither representation
                    // materializes the successor here.
                    let ample_mover = reduce
                        .filter(|_| movers.len() > 1)
                        .and_then(IndependenceOracle::ample_mover_static);
                    let sched: &[Mover] = match &ample_mover {
                        Some(m) => {
                            ample = true;
                            std::slice::from_ref(m)
                        }
                        None => &movers,
                    };
                    for &m in sched {
                        for &q2 in &q_targets {
                            out.push(PState::Run {
                                config: cid,
                                mover: m,
                                q: q2,
                                oracle,
                            });
                        }
                    }
                }
                (out, ample)
            }
        }
    }
}
