//! Modular verification (Section 5, Theorem 5.4).
//!
//! An *open* composition `C` interacts with an unspecified environment
//! through the queues in `C.Q_in Δ C.Q_out`. The environment's behaviour is
//! declared as an LTL-FO **environment spec** `ψ` over those queues, and
//! `C ⊨_ψ φ` holds iff every run of `C` (with nondeterministic environment
//! moves) that satisfies the *translated* spec also satisfies `φ`.
//!
//! The two translations of Definition 5.3, in this order:
//!
//! 1. **Relativization** `ψ ↦ ψ̄`: environment specs speak about
//!    consecutive *environment* steps, so every `X`/`U` is relativized to
//!    the proposition `moveE` (`Xα`/`Uα`, rewritten into plain LTL).
//! 2. **Observer-at-recipient translation** `ψ̄ ↦ ψ̄r`: on lossy bounded
//!    queues the recipient only sees enqueued messages, so each atom
//!    `Q(x̄)` over an environment out-queue becomes
//!    `X (received_Q → Q(x̄))` — "if the next snapshot shows a newly
//!    enqueued message on `Q`, it is `Q(x̄)`".
//!
//! Verification then searches for a run satisfying `ψ̄r ∧ ¬φ[ν]`; none
//! existing for any valuation `ν` proves `C ⊨_ψ φ`.
//!
//! The spec must be **strictly input-bounded** (no temporal operator in the
//! scope of a quantifier — Theorem 5.5 shows the non-strict case is
//! undecidable). Because the translation rewrites atoms *inside* quantified
//! FO subformulas into temporal formulas, quantifiers over environment
//! out-queue atoms are hoisted into the universal closure; this is sound
//! for universal-positive (and existential-negative) binders, and the
//! checker rejects the others.

use crate::ground::{canonical_valuations, ground_ltlfo, AtomRegistry};
use crate::product::ProductSystem;
use crate::verify::{
    build_counterexample, Inconclusive, Outcome, Report, Verifier, VerifyError, VerifyOptions,
};
use ddws_automata::emptiness::SearchStats;
use ddws_logic::input_bounded::check_input_bounded_sentence;
use ddws_logic::{Fo, LtlFo, LtlFoSentence, VarId};
use ddws_model::Endpoint;
use ddws_relational::{RelId, Value};
use ddws_telemetry::AbortReason;
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

/// The spec after translation: body plus the variables hoisted from
/// quantifiers that had to scope over introduced temporal operators.
struct TranslatedSpec {
    body: LtlFo,
    hoisted_vars: Vec<VarId>,
}

impl Verifier {
    /// Checks `C ⊨_ψ φ`: does every run of the open composition whose
    /// environment behaves as `env_spec` promises satisfy `property`?
    pub fn check_modular(
        &mut self,
        property: &LtlFoSentence,
        env_spec: &LtlFoSentence,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_modular_inner(property, env_spec, opts);
        self.restore_masks(saved);
        result
    }

    fn check_modular_inner(
        &mut self,
        property: &LtlFoSentence,
        env_spec: &LtlFoSentence,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let mut meta = crate::telemetry::RunMeta::new("check_modular", opts);
        let comp = self.composition();
        if comp.is_closed() {
            return Err(VerifyError::Unsupported(
                "modular verification needs an open composition (§5)".into(),
            ));
        }
        let move_env = comp
            .move_env_rel
            .expect("open compositions declare move_ENV");

        if opts.require_input_bounded {
            let mut violations = Vec::new();
            if let Err(vs) = comp.check_input_bounded(opts.ib_options) {
                violations.extend(vs);
            }
            if let Err(vs) = check_input_bounded_sentence(property, comp, opts.ib_options) {
                violations.extend(vs);
            }
            if let Err(vs) = check_input_bounded_sentence(env_spec, comp, opts.ib_options) {
                violations.extend(vs);
            }
            if !env_spec.is_strict() {
                violations.push(ddws_logic::input_bounded::IbViolation {
                    message: "environment spec must be strictly input-bounded: no temporal \
                              operator in the scope of a quantifier, and no free variables \
                              (Theorem 5.5)"
                        .into(),
                });
            }
            if !violations.is_empty() {
                return Err(VerifyError::NotInputBounded(violations));
            }
        }

        // ψ̄: relativize temporal operators to moveE.
        let relativized = env_spec.body.relativize(move_env);
        // ψ̄r: observer-at-recipient translation.
        let env_out_received: HashMap<RelId, RelId> = comp
            .channels
            .iter()
            .filter(|c| c.sender == Endpoint::Environment)
            .map(|c| (c.out_rel, c.received_rel))
            .collect();
        let rigid_rels: BTreeSet<RelId> = comp
            .voc
            .iter()
            .map(|(rel, _)| rel)
            .filter(|&rel| comp.class(rel) == ddws_logic::input_bounded::RelClass::Database)
            .collect();
        let translated =
            translate_observer_at_recipient(&relativized, &env_out_received, &rigid_rels)
                .map_err(VerifyError::Unsupported)?;

        // Track the flags and relations everything observes.
        let mut observed = BTreeSet::new();
        property
            .body
            .visit_fo(&mut |fo| observed.extend(fo.relations()));
        translated
            .body
            .visit_fo(&mut |fo| observed.extend(fo.relations()));
        self.composition_mut().observe_flags(&observed);
        self.composition_mut().freeze_unobserved(&observed);

        let domain = {
            // Constants of both formulas matter.
            let d1 = self.domain_for(property, opts);
            let d2 = self.domain_for(env_spec, opts);
            let mut all: BTreeSet<Value> = d1.into_iter().collect();
            all.extend(d2);
            all.into_iter().collect::<Vec<Value>>()
        };
        let (constants, fresh) = self.split_domain(&domain);
        let (base_db, universe) = self.database_setup_pub(&opts.database, &domain);

        // A run refutes the modular judgment iff it satisfies ψ̄r under
        // *every* spec valuation and ¬φ under *some* property valuation:
        // the spec valuations become a conjunction.
        let spec_valuations = canonical_valuations(&translated.hoisted_vars, &domain, &[]);

        let negated_property = LtlFo::not(property.body.clone());
        // Atom-capacity pre-check: grounding conjoins one copy of the spec
        // per valuation; more than 64 distinct snapshot atoms cannot be
        // encoded in a letter. Fail gracefully instead of panicking deep in
        // the registry.
        let leaves = |f: &LtlFo| -> usize {
            let mut n = 0;
            f.visit_fo(&mut |_| n += 1);
            n
        };
        let estimate = spec_valuations.len() * leaves(&translated.body) + leaves(&negated_property);
        if estimate > 64 {
            return Err(VerifyError::Unsupported(format!(
                "modular check would ground ~{estimate} snapshot atoms (> 64): reduce the                  environment spec's free variables, the domain, or split the spec"
            )));
        }
        // Ample reduction: gated exactly as in `check` — in practice the
        // relativization introduces `X` (and the translated spec observes
        // the `moveE` proposition), so modular checks degrade to full
        // expansion; the plumbing keeps the options uniform.
        let combined = LtlFo::And(vec![translated.body.clone(), property.body.clone()]);
        let reduction =
            crate::verify::reduction_oracle(self.composition(), &combined, &observed, opts);
        let shared = crate::verify::build_shared(
            self.composition(),
            opts.rule_eval,
            opts.state_repr,
            &domain,
        );
        let limits = meta.limits(opts);
        let valuations = canonical_valuations(&property.universal_vars, &constants, &fresh);
        let valuations_checked = valuations.len();

        // Dispatch the property valuations through the shard scheduler,
        // exactly as `check` does: the spec conjunction is re-grounded per
        // valuation (its atoms get identical ids — grounding is
        // deterministic), and the combined formula is the NBA-cache key,
        // so property valuations sharing a grounded shape translate once.
        let shards = crate::scheduler::effective_shards(opts);
        let task_opts = VerifyOptions {
            threads: crate::scheduler::inner_threads(opts, shards),
            ..opts.clone()
        };
        let cache = crate::scheduler::NbaCache::new();
        let deterministic = crate::scheduler::deterministic_mode(opts);
        let tasks: Vec<_> = valuations.iter().cloned().map(|v| (v, None)).collect();
        let comp = self.composition();
        let meta_ref: &crate::telemetry::RunMeta = &meta;
        let runner = |valuation: &HashMap<VarId, Value>,
                      _resume: Option<ddws_automata::EngineCheckpoint<crate::product::PState>>,
                      limits: &ddws_automata::SearchLimits|
         -> crate::scheduler::TaskOutput {
            let mut atoms = AtomRegistry::new();
            let nba_start = Instant::now();
            let mut conjuncts: Vec<ddws_automata::Ltl> = Vec::new();
            for spec_val in &spec_valuations {
                conjuncts.push(ground_ltlfo(&translated.body, spec_val, &mut atoms));
            }
            conjuncts.push(ground_ltlfo(&negated_property, valuation, &mut atoms));
            let ltl = conjuncts
                .into_iter()
                .reduce(ddws_automata::Ltl::and)
                .expect("at least the negated property");
            let nba = cache.translate(&ltl);
            cache.add_ns(nba_start.elapsed().as_nanos() as u64);
            let mut system =
                ProductSystem::new(comp, &base_db, &universe, &domain, &nba, &atoms, &shared);
            if let Some(ind) = &reduction {
                system = system.with_reduction(ind);
            }
            let tel = meta_ref.engine_telemetry(&task_opts, &shared);
            match crate::parallel::search_product(&system, &task_opts, limits, &tel) {
                Ok((None, stats)) => crate::scheduler::TaskOutput {
                    stats,
                    verdict: crate::scheduler::TaskVerdict::Holds,
                },
                Ok((Some(lasso), stats)) => {
                    let cex_start = Instant::now();
                    let cex = build_counterexample(
                        &system,
                        &base_db,
                        &universe,
                        &property.universal_vars,
                        valuation,
                        lasso.prefix,
                        lasso.cycle,
                    );
                    crate::scheduler::TaskOutput {
                        stats,
                        verdict: crate::scheduler::TaskVerdict::Violated {
                            cex: Box::new(cex),
                            cex_ns: cex_start.elapsed().as_nanos() as u64,
                        },
                    }
                }
                Err(stop) => crate::scheduler::TaskOutput {
                    stats: stop.stats,
                    verdict: crate::scheduler::TaskVerdict::Stopped {
                        reason: stop.reason,
                        checkpoint: stop.checkpoint,
                    },
                },
            }
        };
        let outcome =
            crate::scheduler::run_valuation_shards(tasks, shards, &limits, deterministic, runner);
        meta.nba_ns += cache.ns();
        let fold = |batch: &SearchStats| -> SearchStats {
            let mut stats = *batch;
            shared.fold_into(&mut stats);
            stats.nba_cache_hits = cache.hits();
            stats.nba_cache_misses = cache.misses();
            stats
        };
        match outcome {
            crate::scheduler::ShardOutcome::AllHold { stats, per_shard } => {
                let stats = fold(&stats);
                let telemetry =
                    meta.finish(opts, "holds", &stats, domain.len(), valuations_checked);
                Ok(Report {
                    outcome: Outcome::Holds,
                    stats,
                    domain,
                    valuations_checked,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
            crate::scheduler::ShardOutcome::Violated {
                index: _,
                cex,
                cex_ns,
                stats,
                per_shard,
            } => {
                let stats = fold(&stats);
                meta.cex_ns += cex_ns;
                let telemetry =
                    meta.finish(opts, "violated", &stats, domain.len(), valuations_checked);
                Ok(Report {
                    outcome: Outcome::Violated(cex),
                    stats,
                    domain,
                    valuations_checked,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
            crate::scheduler::ShardOutcome::Stopped {
                reason,
                stats,
                per_shard,
                ..
            } => {
                let stats = fold(&stats);
                if let AbortReason::WorkerPanicked { worker, payload } = &reason {
                    let report = meta.finish_abort(
                        opts,
                        &reason,
                        false,
                        &stats,
                        domain.len(),
                        valuations_checked,
                    );
                    return Err(VerifyError::WorkerPanicked {
                        worker: *worker,
                        payload: payload.clone(),
                        report: Box::new(report),
                    });
                }
                // Modular checks never capture checkpoints: the spec
                // translation is cheap to redo, so a fresh call with laxer
                // limits is the resume path — the scheduler's legs are
                // dropped.
                let telemetry = meta.finish_abort(
                    opts,
                    &reason,
                    false,
                    &stats,
                    domain.len(),
                    valuations_checked,
                );
                Ok(Report {
                    outcome: Outcome::Inconclusive(Box::new(Inconclusive {
                        reason,
                        checkpoint: None,
                    })),
                    stats,
                    domain,
                    valuations_checked,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
        }
    }

    /// Parses an environment spec (same syntax as properties; atoms over
    /// `ENV.!q`, `ENV.?q` and the composition's boundary queues).
    pub fn parse_env_spec(&mut self, src: &str) -> Result<LtlFoSentence, VerifyError> {
        self.parse_property(src)
    }
}

/// Whether a formula mentions no environment out-queue atom and only
/// *rigid* relations (database atoms, equalities, constants) — its truth
/// cannot change between consecutive snapshots, which licenses commuting it
/// past the translation's `X`.
fn is_rigid_and_env_free(fo: &Fo, rigid_rels: &BTreeSet<RelId>) -> bool {
    match fo {
        Fo::True | Fo::False | Fo::Eq(..) => true,
        Fo::Atom(rel, _) => rigid_rels.contains(rel),
        Fo::Not(g) => is_rigid_and_env_free(g, rigid_rels),
        Fo::And(gs) | Fo::Or(gs) => gs.iter().all(|g| is_rigid_and_env_free(g, rigid_rels)),
        Fo::Implies(a, b) => {
            is_rigid_and_env_free(a, rigid_rels) && is_rigid_and_env_free(b, rigid_rels)
        }
        Fo::Exists(_, g) | Fo::Forall(_, g) => is_rigid_and_env_free(g, rigid_rels),
    }
}

/// Applies the observer-at-recipient translation to every FO leaf,
/// hoisting quantifiers that would otherwise scope over the introduced
/// `X` operators.
fn translate_observer_at_recipient(
    f: &LtlFo,
    env_out_received: &HashMap<RelId, RelId>,
    rigid_rels: &BTreeSet<RelId>,
) -> Result<TranslatedSpec, String> {
    let mut hoisted: Vec<VarId> = Vec::new();
    let body = map_leaves(f, &mut |fo| {
        translate_fo(fo, env_out_received, rigid_rels, true, &mut hoisted)
    })?;
    Ok(TranslatedSpec {
        body,
        hoisted_vars: hoisted,
    })
}

/// `LtlFo::map_fo_ltl` with error propagation.
fn map_leaves(f: &LtlFo, t: &mut dyn FnMut(&Fo) -> Result<LtlFo, String>) -> Result<LtlFo, String> {
    Ok(match f {
        LtlFo::Fo(fo) => t(fo)?,
        LtlFo::Not(g) => LtlFo::not(map_leaves(g, t)?),
        LtlFo::And(gs) => LtlFo::And(
            gs.iter()
                .map(|g| map_leaves(g, t))
                .collect::<Result<_, _>>()?,
        ),
        LtlFo::Or(gs) => LtlFo::Or(
            gs.iter()
                .map(|g| map_leaves(g, t))
                .collect::<Result<_, _>>()?,
        ),
        LtlFo::Implies(a, b) => {
            LtlFo::Implies(Box::new(map_leaves(a, t)?), Box::new(map_leaves(b, t)?))
        }
        LtlFo::X(g) => LtlFo::next(map_leaves(g, t)?),
        LtlFo::U(a, b) => LtlFo::until(map_leaves(a, t)?, map_leaves(b, t)?),
    })
}

/// Rewrites one FO leaf. `positive` tracks polarity for quantifier
/// hoisting. Leaves without environment out-queue atoms are kept intact.
fn translate_fo(
    fo: &Fo,
    env_out: &HashMap<RelId, RelId>,
    rigid_rels: &BTreeSet<RelId>,
    positive: bool,
    hoisted: &mut Vec<VarId>,
) -> Result<LtlFo, String> {
    let mentions_env_out = {
        let mut found = false;
        fo.visit_atoms(&mut |r, _| found |= env_out.contains_key(&r));
        found
    };
    if !mentions_env_out {
        return Ok(LtlFo::Fo(fo.clone()));
    }
    match fo {
        Fo::Atom(rel, args) => match env_out.get(rel) {
            Some(&received) => Ok(LtlFo::next(LtlFo::Implies(
                Box::new(LtlFo::Fo(Fo::Atom(received, vec![]))),
                Box::new(LtlFo::Fo(Fo::Atom(*rel, args.clone()))),
            ))),
            None => Ok(LtlFo::Fo(fo.clone())),
        },
        Fo::Not(g) => Ok(LtlFo::not(translate_fo(
            g, env_out, rigid_rels, !positive, hoisted,
        )?)),
        Fo::And(gs) => Ok(LtlFo::And(
            gs.iter()
                .map(|g| translate_fo(g, env_out, rigid_rels, positive, hoisted))
                .collect::<Result<_, _>>()?,
        )),
        Fo::Or(gs) => Ok(LtlFo::Or(
            gs.iter()
                .map(|g| translate_fo(g, env_out, rigid_rels, positive, hoisted))
                .collect::<Result<_, _>>()?,
        )),
        Fo::Implies(a, b) => Ok(LtlFo::Implies(
            Box::new(translate_fo(a, env_out, rigid_rels, !positive, hoisted)?),
            Box::new(translate_fo(b, env_out, rigid_rels, positive, hoisted)?),
        )),
        Fo::Forall(vars, g) if positive => {
            // Special case covering Example 5.1's shape (and most specs):
            // ∀x̄ (Q(x̄) → φ) with `Q` an environment out-queue atom and `φ`
            // *rigid* (only database atoms / equalities — unchanged between
            // consecutive snapshots). Then
            //   ∀x̄ (X(recv_Q → Q(x̄)) → φ)  ≡  X (recv_Q → ∀x̄ (Q(x̄) → φ)),
            // and the right-hand side keeps the quantifier inside one FO
            // leaf — no hoisting, no valuation blow-up.
            if let Fo::Implies(ante, cons) = g.as_ref() {
                if let Fo::Atom(rel, _) = ante.as_ref() {
                    if let Some(&received) = env_out.get(rel) {
                        if is_rigid_and_env_free(cons, rigid_rels) {
                            return Ok(LtlFo::next(LtlFo::Implies(
                                Box::new(LtlFo::Fo(Fo::Atom(received, vec![]))),
                                Box::new(LtlFo::Fo(Fo::Forall(
                                    vars.clone(),
                                    Box::new((**g).clone()),
                                ))),
                            )));
                        }
                    }
                }
            }
            hoisted.extend(vars.iter().copied());
            translate_fo(g, env_out, rigid_rels, positive, hoisted)
        }
        Fo::Exists(vars, g) if !positive => {
            hoisted.extend(vars.iter().copied());
            translate_fo(g, env_out, rigid_rels, positive, hoisted)
        }
        Fo::Forall(..) | Fo::Exists(..) => Err(
            "observer-at-recipient translation: an environment out-queue atom occurs under an \
             existential (in positive position) or universal (in negative position) quantifier, \
             which cannot be hoisted to the universal closure; restructure the environment spec"
                .into(),
        ),
        Fo::True | Fo::False | Fo::Eq(..) => Ok(LtlFo::Fo(fo.clone())),
    }
}
