//! Run-report plumbing shared by every verification entry point.
//!
//! Each entry point (`check`, `check_modular`, the protocol checks,
//! `resume`) opens a [`RunMeta`] when it starts, threads the engine-facing
//! [`EngineTelemetry`] bundle into every product search it launches, and
//! calls [`RunMeta::finish`] (verdicts) or [`RunMeta::finish_abort`]
//! (budget, deadline, cancellation, worker panic) exactly once on every
//! exit path — so a [`RunReport`] reaches the configured reporter no
//! matter how the run ends. Configuration errors (parse failures,
//! input-boundedness violations) abort *before* any search starts and
//! intentionally emit nothing.
//!
//! The wall-clock deadline is armed once, when the `RunMeta` opens: every
//! valuation of a run shares the same deadline instant, so
//! [`VerifyOptions::deadline`] bounds the whole entry-point call rather
//! than each product search individually.

use crate::product::SharedSearch;
use crate::verify::{Reduction, RuleEval, VerifyOptions};
use ddws_automata::{Deadline, SearchLimits};
use ddws_telemetry::{
    Abort, AbortReason, Counters, EngineTelemetry, PhaseTimes, ProgressGate, RunReport, SearchStats,
};
use std::time::Instant;

/// The engine label a thread count maps to in [`RunReport::engine`].
pub(crate) fn engine_label(threads: Option<usize>) -> String {
    match threads {
        None => "seq".to_string(),
        Some(n) => format!("par{n}"),
    }
}

/// Per-run bookkeeping that lives outside [`SearchStats`]: the wall clock,
/// the armed deadline, the progress gate, and the phase timers the
/// verifier (not the engine) owns — NBA translation and counterexample
/// replay.
pub(crate) struct RunMeta {
    entry: &'static str,
    started: Instant,
    deadline: Option<Deadline>,
    gate: Option<ProgressGate>,
    /// Accumulated LTL → NBA translation time across valuations.
    pub(crate) nba_ns: u64,
    /// Counterexample construction time (zero unless the run is violated).
    pub(crate) cex_ns: u64,
}

impl RunMeta {
    /// Opens the run: starts the wall clock, arms the deadline if
    /// `opts.deadline` sets one, and arms the progress gate if
    /// `opts.progress_interval` asks for one.
    pub(crate) fn new(entry: &'static str, opts: &VerifyOptions) -> RunMeta {
        RunMeta {
            entry,
            started: Instant::now(),
            deadline: opts.deadline.map(|d| match &opts.clock {
                Some(clock) => Deadline::after_on(clock.clone(), d),
                None => Deadline::after(d),
            }),
            gate: opts.progress_interval.map(ProgressGate::new),
            nba_ns: 0,
            cex_ns: 0,
        }
    }

    /// The limits every product search of this run honours: the state
    /// budget and run-control hooks from `opts`, plus the run-wide
    /// deadline armed at [`RunMeta::new`].
    pub(crate) fn limits(&self, opts: &VerifyOptions) -> SearchLimits {
        SearchLimits {
            max_states: Some(opts.max_states),
            deadline: self.deadline.clone(),
            cancel: opts.cancel_token.clone(),
            fault: opts.fault_hook.clone(),
        }
    }

    /// The telemetry bundle handed to one product search: the run's
    /// reporter and gate plus `shared`'s rule-cache counters for snapshots.
    pub(crate) fn engine_telemetry<'a>(
        &'a self,
        opts: &'a VerifyOptions,
        shared: &'a SharedSearch,
    ) -> EngineTelemetry<'a> {
        EngineTelemetry {
            reporter: opts.reporter.get(),
            gate: self.gate.as_ref(),
            rule_meter: Some(shared),
        }
    }

    /// Builds the final [`RunReport`] for a *verdict* (`holds` /
    /// `violated`), emits it through the run's reporter, and returns it
    /// for the caller's `Report`.
    pub(crate) fn finish(
        &self,
        opts: &VerifyOptions,
        outcome: &str,
        stats: &SearchStats,
        domain_size: usize,
        valuations_checked: usize,
    ) -> RunReport {
        self.emit(opts, outcome, None, stats, domain_size, valuations_checked)
    }

    /// Builds and emits the final [`RunReport`] for a graceful abort: the
    /// outcome is the reason's label and the report carries the `abort`
    /// object (budget, spent, resumability).
    pub(crate) fn finish_abort(
        &self,
        opts: &VerifyOptions,
        reason: &AbortReason,
        resumable: bool,
        stats: &SearchStats,
        domain_size: usize,
        valuations_checked: usize,
    ) -> RunReport {
        let elapsed_ns = self.started.elapsed().as_nanos() as u64;
        let abort = Abort::new(reason, stats.states_visited, elapsed_ns, resumable);
        self.emit(
            opts,
            reason.label(),
            Some(abort),
            stats,
            domain_size,
            valuations_checked,
        )
    }

    fn emit(
        &self,
        opts: &VerifyOptions,
        outcome: &str,
        abort: Option<Abort>,
        stats: &SearchStats,
        domain_size: usize,
        valuations_checked: usize,
    ) -> RunReport {
        let total_ns = self.started.elapsed().as_nanos() as u64;
        // Engine time not attributable to rule evaluation is queue/cache
        // bookkeeping: hashing configurations, frontier maintenance, cache
        // probes. Saturating because the interpreted path meters rule time
        // inside spans the boot/successor timers also cover.
        let queue_bookkeeping_ns =
            (stats.boot_ns + stats.successor_ns).saturating_sub(stats.rule_eval_ns);
        let report = RunReport {
            entry_point: self.entry.to_string(),
            engine: engine_label(opts.threads),
            reduction: match opts.reduction {
                Reduction::Full => "full",
                Reduction::Ample => "ample",
            }
            .to_string(),
            rule_eval: match opts.rule_eval {
                RuleEval::Compiled => "compiled",
                RuleEval::Interpreted => "interpreted",
            }
            .to_string(),
            outcome: outcome.to_string(),
            abort,
            valuations_checked: valuations_checked as u64,
            domain_size: domain_size as u64,
            counters: Counters::from_stats(stats),
            phases: PhaseTimes {
                nba_translation_ns: self.nba_ns,
                boot_ns: stats.boot_ns,
                successor_ns: stats.successor_ns,
                rule_eval_ns: stats.rule_eval_ns,
                queue_bookkeeping_ns,
                lasso_ns: stats.lasso_ns,
                counterexample_ns: self.cex_ns,
                total_ns,
            },
        };
        opts.reporter.get().report(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels_follow_the_schema() {
        assert_eq!(engine_label(None), "seq");
        assert_eq!(engine_label(Some(1)), "par1");
        assert_eq!(engine_label(Some(4)), "par4");
    }

    #[test]
    fn abort_reports_validate_against_the_schema() {
        let opts = VerifyOptions::default();
        let meta = RunMeta::new("check", &opts);
        let stats = SearchStats {
            states_visited: 17,
            truncated: true,
            ..SearchStats::default()
        };
        let report = meta.finish_abort(
            &opts,
            &AbortReason::StateBudget { max_states: 16 },
            true,
            &stats,
            3,
            1,
        );
        assert_eq!(report.outcome, "budget_exceeded");
        let abort = report.abort.as_ref().expect("abort object present");
        assert_eq!(abort.budget, 16);
        assert_eq!(abort.spent, 17);
        assert!(abort.resumable);
        ddws_telemetry::validate_run_report(&report.to_json_value())
            .expect("abort report round-trips the schema");
    }
}
