//! The top-level verification API.

use crate::counterexample::{Counterexample, RunStep};
use crate::domain::suggested_fresh_values;
use crate::ground::{canonical_valuations, ground_ltlfo, AtomRegistry};
use crate::oracle::{FactUniverse, Oracle};
use crate::product::{PState, ProductSystem, SharedSearch};
use ddws_automata::emptiness::{BudgetExceeded, SearchStats};
use ddws_automata::{ltl_to_nba, Ltl};
use ddws_logic::input_bounded::{check_input_bounded_sentence, IbOptions, IbViolation};
use ddws_logic::parser::{parse_sentence, ParseError, Resolver};
use ddws_logic::{LtlFo, LtlFoSentence, VarId};
use ddws_model::builder::collect_constants;
use ddws_model::{Composition, IndependenceOracle};
use ddws_relational::{Instance, RelId, Value};
use ddws_telemetry::{ReporterHandle, RunReport};
use std::collections::BTreeSet;
use std::fmt;
use std::time::{Duration, Instant};

/// How the ∃-quantification over databases is handled.
#[derive(Clone, Debug, Default)]
pub enum DatabaseMode {
    /// Verify runs over one concrete database (useful for testing a
    /// deployment; not a proof over all databases).
    Fixed(Instance),
    /// Sound-and-complete verification over **all** databases with active
    /// domain inside the verification domain, via the lazy oracle.
    #[default]
    AllDatabases,
}

/// Partial-order reduction of peer interleavings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Reduction {
    /// Explore every serialized interleaving (Definition 2.6 verbatim);
    /// bit-identical to the verifier before the reduction existed.
    #[default]
    Full,
    /// Ample-set partial-order reduction: per configuration, schedule only
    /// a mover that is statically independent of all others and invisible
    /// to the property's atoms (see `ddws_model::independence`). Verdicts
    /// are identical to [`Reduction::Full`]; counterexamples and search
    /// statistics may differ. Automatically degrades to `Full` when the
    /// property contains `X` (the reduction is sound only for
    /// stutter-invariant properties), observes a move proposition, or no
    /// mover qualifies.
    Ample,
}

/// Which engine evaluates reaction-rule bodies during successor
/// generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RuleEval {
    /// Compile each rule body once into a flat join/filter/project plan and
    /// memoize step results keyed on the *footprint* — the exact contents
    /// of the relations and queue heads the plan reads (DESIGN.md §3.8).
    /// Verdicts, successor sets and counterexamples are identical to
    /// [`RuleEval::Interpreted`]; only speed differs.
    #[default]
    Compiled,
    /// Re-interpret the FO body on every step — the oracle of record the
    /// differential harness compares the compiled engine against.
    /// Evaluation time is still metered so timings stay comparable.
    Interpreted,
}

/// Verification options.
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Database handling.
    pub database: DatabaseMode,
    /// Number of fresh ("arbitrary distinct") domain values; `None` applies
    /// the heuristic of [`suggested_fresh_values`].
    pub fresh_values: Option<usize>,
    /// State budget for the product search.
    pub max_states: u64,
    /// Product-search engine: `None` runs the sequential nested DFS
    /// (CVWY); `Some(n)` runs the parallel engine with `n` worker threads
    /// (`Some(0)` = all available cores). Verdicts are identical across
    /// engines; counterexamples may differ (see `crate::parallel`).
    pub threads: Option<usize>,
    /// Enforce input-boundedness of the composition and property before
    /// checking (the hypothesis of Theorem 3.4). Disable only for
    /// experiments outside the decidable regime.
    pub require_input_bounded: bool,
    /// Input-boundedness checker options.
    pub ib_options: IbOptions,
    /// Partial-order reduction of peer interleavings (default
    /// [`Reduction::Full`]).
    pub reduction: Reduction,
    /// Rule-evaluation engine (default [`RuleEval::Compiled`]).
    pub rule_eval: RuleEval,
    /// Where telemetry goes: progress snapshots while the search runs and
    /// one [`RunReport`] when it finishes. Defaults to the silent reporter,
    /// which costs one branch per ~1024 expanded states on the hot path.
    pub reporter: ReporterHandle,
    /// Minimum wall-clock spacing between progress snapshots; `None`
    /// disables progress emission entirely (the final report still goes
    /// out). Default: one second.
    pub progress_interval: Option<Duration>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            database: DatabaseMode::AllDatabases,
            fresh_values: None,
            max_states: 5_000_000,
            threads: None,
            require_input_bounded: true,
            ib_options: IbOptions::default(),
            reduction: Reduction::default(),
            rule_eval: RuleEval::default(),
            reporter: ReporterHandle::default(),
            progress_interval: Some(Duration::from_secs(1)),
        }
    }
}

/// Whether an LTL-FO formula contains the `X` operator anywhere —
/// properties with `X` are not stutter-invariant, so the ample-set
/// reduction must stay off for them.
pub(crate) fn contains_next(f: &LtlFo) -> bool {
    match f {
        LtlFo::Fo(_) => false,
        LtlFo::X(_) => true,
        LtlFo::Not(g) => contains_next(g),
        LtlFo::And(gs) | LtlFo::Or(gs) => gs.iter().any(contains_next),
        LtlFo::Implies(a, b) | LtlFo::U(a, b) => contains_next(a) || contains_next(b),
    }
}

/// Builds the independence oracle for a check, or `None` when the
/// reduction must stay off: not requested, property not stutter-invariant
/// (contains `X`), or no mover qualifies under the observed atoms.
pub(crate) fn reduction_oracle(
    comp: &Composition,
    body: &LtlFo,
    observed: &BTreeSet<RelId>,
    opts: &VerifyOptions,
) -> Option<IndependenceOracle> {
    if opts.reduction != Reduction::Ample || contains_next(body) {
        return None;
    }
    Some(IndependenceOracle::new(comp, observed))
}

/// Verification failure (as opposed to a property verdict).
#[derive(Debug)]
pub enum VerifyError {
    /// The property failed to parse.
    Parse(ParseError),
    /// The composition or property is outside the input-bounded fragment.
    NotInputBounded(Vec<IbViolation>),
    /// The search exhausted its state budget.
    Budget(BudgetExceeded),
    /// Unsupported configuration.
    Unsupported(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Parse(e) => write!(f, "{e}"),
            VerifyError::NotInputBounded(vs) => {
                writeln!(f, "specification is not input-bounded (§3.1):")?;
                for v in vs {
                    writeln!(f, "  - {v}")?;
                }
                Ok(())
            }
            VerifyError::Budget(b) => write!(f, "{b}"),
            VerifyError::Unsupported(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ParseError> for VerifyError {
    fn from(e: ParseError) -> Self {
        VerifyError::Parse(e)
    }
}

/// The verdict.
#[derive(Debug)]
pub enum Outcome {
    /// Every run over every database (within the domain bound) satisfies
    /// the property.
    Holds,
    /// A violating run exists.
    Violated(Box<Counterexample>),
}

impl Outcome {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, Outcome::Holds)
    }
}

/// Verification report.
#[derive(Debug)]
pub struct Report {
    /// The verdict.
    pub outcome: Outcome,
    /// Aggregate search statistics across all valuations checked.
    pub stats: SearchStats,
    /// The verification domain used.
    pub domain: Vec<Value>,
    /// Number of universal-closure valuations examined.
    pub valuations_checked: usize,
    /// The run report also emitted through [`VerifyOptions::reporter`]
    /// (same counters as `stats`, plus phase timers and run labels).
    pub telemetry: RunReport,
}

/// The verifier: owns the composition (its symbol/variable tables grow as
/// properties are parsed) and a pool of fresh domain values reused across
/// checks.
pub struct Verifier {
    comp: Composition,
    fresh_pool: Vec<Value>,
}

impl Verifier {
    /// Wraps a composition for verification.
    pub fn new(comp: Composition) -> Self {
        Verifier {
            comp,
            fresh_pool: Vec::new(),
        }
    }

    /// The composition under verification.
    pub fn composition(&self) -> &Composition {
        &self.comp
    }

    /// Mutable access (e.g. to tweak [`Semantics`](ddws_model::Semantics)
    /// between checks).
    pub fn composition_mut(&mut self) -> &mut Composition {
        &mut self.comp
    }

    /// Parses an LTL-FO sentence over the composition schema (qualified
    /// names: `O.customer`, `O.?apply`, `CR.!rating`, `move_O`, …).
    pub fn parse_property(&mut self, src: &str) -> Result<LtlFoSentence, VerifyError> {
        let comp = &mut self.comp;
        let mut resolver = Resolver {
            voc: &comp.voc,
            vars: &mut comp.vars,
            symbols: &mut comp.symbols,
        };
        Ok(parse_sentence(src, &mut resolver)?)
    }

    /// Ensures the fresh pool holds at least `n` values and returns them.
    fn fresh(&mut self, n: usize) -> &[Value] {
        while self.fresh_pool.len() < n {
            self.fresh_pool.push(self.comp.symbols.fresh("_d"));
        }
        &self.fresh_pool[..n]
    }

    /// The verification domain for a property under the given options.
    pub fn domain_for(&mut self, property: &LtlFoSentence, opts: &VerifyOptions) -> Vec<Value> {
        let fresh_n = opts
            .fresh_values
            .unwrap_or_else(|| suggested_fresh_values(&self.comp, property));
        let mut dom: BTreeSet<Value> = self.comp.rule_constants.iter().copied().collect();
        property.body.visit_fo(&mut |fo| {
            let mut cs = BTreeSet::new();
            collect_constants(fo, &mut cs);
            dom.extend(cs);
        });
        if let DatabaseMode::Fixed(db) = &opts.database {
            dom.extend(db.active_domain());
        }
        dom.extend(self.fresh(fresh_n).iter().copied());
        dom.into_iter().collect()
    }

    /// Saves the composition's observation masks (restored after a check so
    /// verification tuning never leaks into direct uses of the composition).
    pub(crate) fn save_masks(&self) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
        (
            self.comp.observed_received.clone(),
            self.comp.observed_sent.clone(),
            self.comp.frozen.clone(),
        )
    }

    /// Restores masks saved by [`Verifier::save_masks`].
    pub(crate) fn restore_masks(&mut self, saved: (Vec<bool>, Vec<bool>, Vec<bool>)) {
        self.comp.observed_received = saved.0;
        self.comp.observed_sent = saved.1;
        self.comp.frozen = saved.2;
    }

    /// Checks `C ⊨ property` (Theorem 3.4's decision procedure).
    pub fn check(
        &mut self,
        property: &LtlFoSentence,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_inner(property, opts);
        self.restore_masks(saved);
        result
    }

    fn check_inner(
        &mut self,
        property: &LtlFoSentence,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let mut meta = crate::telemetry::RunMeta::new("check", opts);
        if opts.require_input_bounded {
            let mut violations = Vec::new();
            if let Err(vs) = self.comp.check_input_bounded(opts.ib_options) {
                violations.extend(vs);
            }
            if let Err(vs) = check_input_bounded_sentence(property, &self.comp, opts.ib_options) {
                violations.extend(vs);
            }
            if !violations.is_empty() {
                return Err(VerifyError::NotInputBounded(violations));
            }
        }

        // Track only the received/sent flags the property observes — the
        // others would double the configuration space per channel for
        // nothing.
        let mut observed = BTreeSet::new();
        property.body.visit_fo(&mut |fo| {
            observed.extend(fo.relations());
        });
        self.comp.observe_flags(&observed);
        self.comp.freeze_unobserved(&observed);

        let domain = self.domain_for(property, opts);
        let (base_db, universe) = self.database_setup(&opts.database, &domain);

        let negated_body = ddws_logic::LtlFo::not(property.body.clone());
        let reduction = reduction_oracle(&self.comp, &property.body, &observed, opts);
        let shared = match opts.rule_eval {
            RuleEval::Compiled => SharedSearch::compiled(&self.comp),
            RuleEval::Interpreted => SharedSearch::interpreted_metered(),
        };
        let mut stats = SearchStats::default();
        // Fresh values are interchangeable: check valuations only up to
        // renaming of the fresh part of the domain. Moreover, the paper
        // quantifies the universal closure over the *run's* active domain
        // Dom(rho); with a fixed database and a closed composition, fresh
        // values can never enter any run (no rule, message or input can
        // introduce them), so valuations touching them are skipped -- this
        // is exact, not an approximation.
        let (constants, fresh) = self.split_domain(&domain);
        let fixed_closed = matches!(opts.database, DatabaseMode::Fixed(_)) && self.comp.is_closed();
        let fresh_for_closure: &[Value] = if fixed_closed { &[] } else { &fresh };
        let valuations =
            canonical_valuations(&property.universal_vars, &constants, fresh_for_closure);
        let valuations_checked = valuations.len();
        for valuation in valuations {
            let mut atoms = AtomRegistry::new();
            let nba_start = Instant::now();
            let ltl: Ltl = ground_ltlfo(&negated_body, &valuation, &mut atoms);
            let nba = ltl_to_nba(&ltl);
            meta.nba_ns += nba_start.elapsed().as_nanos() as u64;
            let mut system = ProductSystem::new(
                &self.comp, &base_db, &universe, &domain, &nba, &atoms, &shared,
            );
            if let Some(ind) = &reduction {
                system = system.with_reduction(ind);
            }
            let tel = meta.engine_telemetry(opts, &shared);
            let (lasso, s) = match crate::parallel::search_product(&system, opts, &tel) {
                Ok(found) => found,
                Err(err) => {
                    // A budget abort still reports what the run saw so far.
                    if let VerifyError::Budget(b) = &err {
                        stats.absorb(&b.stats);
                        shared.fold_into(&mut stats);
                        meta.finish(
                            opts,
                            "budget_exceeded",
                            &stats,
                            domain.len(),
                            valuations_checked,
                        );
                    }
                    return Err(err);
                }
            };
            stats.absorb(&s);
            // The rule-evaluation and phase counters live in `shared` (they
            // span valuations), so they overwrite rather than accumulate.
            shared.fold_into(&mut stats);
            if let Some(lasso) = lasso {
                let cex_start = Instant::now();
                let cex = build_counterexample(
                    &system,
                    &base_db,
                    &universe,
                    &property.universal_vars,
                    &valuation,
                    lasso.prefix,
                    lasso.cycle,
                );
                meta.cex_ns += cex_start.elapsed().as_nanos() as u64;
                let telemetry =
                    meta.finish(opts, "violated", &stats, domain.len(), valuations_checked);
                return Ok(Report {
                    outcome: Outcome::Violated(Box::new(cex)),
                    stats,
                    domain,
                    valuations_checked,
                    telemetry,
                });
            }
        }
        let telemetry = meta.finish(opts, "holds", &stats, domain.len(), valuations_checked);
        Ok(Report {
            outcome: Outcome::Holds,
            stats,
            domain,
            valuations_checked,
            telemetry,
        })
    }

    /// Convenience: parse then check.
    pub fn check_str(
        &mut self,
        property: &str,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let p = self.parse_property(property)?;
        self.check(&p, opts)
    }

    /// Replays a [`Counterexample`] returned by [`Verifier::check`] for
    /// `property` under the same options, validating that it denotes a real
    /// violating run shape: the first snapshot is an initial configuration,
    /// every step is a legal composition move, and the cycle closes.
    ///
    /// The check re-applies the observation masks and verification domain
    /// that `check` used (counterexample configurations were produced under
    /// them), and runs the composition over the counterexample's own
    /// database — for `AllDatabases` mode that is the materialized oracle,
    /// so replay validates exactly the database the search decided.
    ///
    /// Returns `Err` with a description of the first mismatch. This is the
    /// oracle the differential test harness uses to cross-validate the
    /// sequential and parallel engines' witnesses.
    pub fn replay_counterexample(
        &mut self,
        property: &LtlFoSentence,
        cex: &Counterexample,
        opts: &VerifyOptions,
    ) -> Result<(), String> {
        let saved = self.save_masks();
        let result = self.replay_inner(property, cex, opts);
        self.restore_masks(saved);
        result
    }

    fn replay_inner(
        &mut self,
        property: &LtlFoSentence,
        cex: &Counterexample,
        opts: &VerifyOptions,
    ) -> Result<(), String> {
        // Mirror check_inner's mask setup: configurations in the
        // counterexample carry only observed flags and unfrozen state.
        let mut observed = BTreeSet::new();
        property.body.visit_fo(&mut |fo| {
            observed.extend(fo.relations());
        });
        self.comp.observe_flags(&observed);
        self.comp.freeze_unobserved(&observed);
        let domain = self.domain_for(property, opts);

        let steps: Vec<&RunStep> = cex.prefix.iter().chain(cex.cycle.iter()).collect();
        if cex.cycle.is_empty() {
            return Err("counterexample has an empty cycle".into());
        }
        let first = steps.first().expect("cycle is non-empty");
        let initials = self.comp.initial_configs(&cex.database, &domain);
        if !initials.contains(&first.config) {
            return Err("first snapshot is not an initial configuration".into());
        }
        for (i, pair) in steps.windows(2).enumerate() {
            let succs =
                self.comp
                    .successors(&cex.database, &domain, &pair[0].config, pair[0].mover);
            if !succs.contains(&pair[1].config) {
                return Err(format!(
                    "step {i}: snapshot is not a {:?}-successor of its predecessor",
                    pair[0].mover
                ));
            }
        }
        let last = steps.last().expect("cycle is non-empty");
        let wrap = self
            .comp
            .successors(&cex.database, &domain, &last.config, last.mover);
        let entry = &cex.cycle[0];
        if !wrap.contains(&entry.config) {
            return Err("cycle does not close back to its entry snapshot".into());
        }
        Ok(())
    }

    /// Splits a domain into (constants, fresh) parts — fresh values are the
    /// pool-minted ones, interchangeable under valuation symmetry.
    pub(crate) fn split_domain(&self, domain: &[Value]) -> (Vec<Value>, Vec<Value>) {
        let fresh: Vec<Value> = domain
            .iter()
            .copied()
            .filter(|v| self.fresh_pool.contains(v))
            .collect();
        let constants: Vec<Value> = domain
            .iter()
            .copied()
            .filter(|v| !self.fresh_pool.contains(v))
            .collect();
        (constants, fresh)
    }

    pub(crate) fn database_setup_pub(
        &self,
        mode: &DatabaseMode,
        domain: &[Value],
    ) -> (Instance, FactUniverse) {
        self.database_setup(mode, domain)
    }

    fn database_setup(&self, mode: &DatabaseMode, domain: &[Value]) -> (Instance, FactUniverse) {
        match mode {
            DatabaseMode::Fixed(db) => (db.clone(), FactUniverse::default()),
            DatabaseMode::AllDatabases => {
                let db_rels: Vec<RelId> = self
                    .comp
                    .peers
                    .iter()
                    .flat_map(|p| p.database.iter().copied())
                    .collect();
                (
                    Instance::empty(&self.comp.voc),
                    FactUniverse::new(&self.comp.voc, &db_rels, domain),
                )
            }
        }
    }
}

/// Rebuilds a [`Counterexample`] from a product lasso: fork (oracle-growth)
/// pseudo-steps are elided, the final oracle is materialized as the
/// witnessing database.
pub(crate) fn build_counterexample(
    system: &ProductSystem<'_>,
    base_db: &Instance,
    universe: &FactUniverse,
    universal_vars: &[VarId],
    valuation: &std::collections::HashMap<VarId, Value>,
    prefix: Vec<PState>,
    cycle: Vec<PState>,
) -> Counterexample {
    let comp = system.comp;
    // The largest oracle along the path is the one of the cycle states
    // (oracles only grow, and never grow inside a cycle).
    let final_oracle: Oracle = match cycle.first() {
        Some(PState::Run { oracle, .. }) | Some(PState::Boot { oracle }) => {
            (*system.oracle(*oracle)).clone()
        }
        None => Oracle::undecided(universe.len()),
    };
    let mut database = base_db.clone();
    let decided = final_oracle.materialize(&comp.voc, universe);
    for (rel, _) in comp.voc.iter() {
        let r = decided.relation(rel);
        if !r.is_empty() {
            database.set_relation(rel, database.relation(rel).union(r));
        }
    }

    // Elide fork steps: a state is a real snapshot iff the next state on the
    // path has the same oracle (fork edges strictly grow it) — the last
    // state before the cycle and all cycle states are always real.
    let oracle_of = |s: &PState| -> u32 {
        match s {
            PState::Boot { oracle } | PState::Run { oracle, .. } => *oracle,
        }
    };
    let full: Vec<PState> = prefix.iter().chain(cycle.iter()).copied().collect();
    let mut steps: Vec<RunStep> = Vec::new();
    let mut cycle_start_in_steps = 0;
    for (i, s) in full.iter().enumerate() {
        let is_fork_source = full
            .get(i + 1)
            .map(|n| oracle_of(n) != oracle_of(s))
            .unwrap_or(false);
        if i == prefix.len() {
            cycle_start_in_steps = steps.len();
        }
        if is_fork_source {
            continue;
        }
        if let PState::Run { config, mover, .. } = s {
            steps.push(RunStep {
                config: (*system.config(*config)).clone(),
                mover: *mover,
            });
        }
    }
    let cycle_steps = steps.split_off(cycle_start_in_steps);
    let frozen_rels: Vec<String> = comp
        .voc
        .iter()
        .filter(|(rel, _)| comp.frozen[rel.index()])
        .map(|(_, d)| d.name.clone())
        .collect();
    Counterexample {
        database,
        frozen_rels,
        valuation: universal_vars
            .iter()
            .map(|v| (*v, *valuation.get(v).expect("valuation covers closure")))
            .collect(),
        prefix: steps,
        cycle: cycle_steps,
    }
}
