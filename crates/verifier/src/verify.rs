//! The top-level verification API.

use crate::counterexample::{Counterexample, RunStep};
use crate::domain::suggested_fresh_values;
use crate::ground::{canonical_valuations, ground_ltlfo, AtomRegistry};
use crate::oracle::{FactUniverse, Oracle};
use crate::product::{PState, ProductSystem, SharedSearch};
use ddws_automata::emptiness::SearchStats;
use ddws_automata::{resume_accepting_lasso_with, ClockHandle, EngineCheckpoint, Ltl};
use ddws_logic::input_bounded::{check_input_bounded_sentence, IbOptions, IbViolation};
use ddws_logic::parser::{parse_sentence, ParseError, Resolver};
use ddws_logic::{LtlFo, LtlFoSentence, VarId};
use ddws_model::builder::collect_constants;
use ddws_model::{Composition, IndependenceOracle};
use ddws_relational::{Instance, RelId, Value};
use ddws_telemetry::{AbortReason, CancelToken, FaultHook, ReporterHandle, RunReport};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the ∃-quantification over databases is handled.
#[derive(Clone, Debug, Default)]
pub enum DatabaseMode {
    /// Verify runs over one concrete database (useful for testing a
    /// deployment; not a proof over all databases).
    Fixed(Instance),
    /// Sound-and-complete verification over **all** databases with active
    /// domain inside the verification domain, via the lazy oracle.
    #[default]
    AllDatabases,
}

/// Partial-order reduction of peer interleavings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Reduction {
    /// Explore every serialized interleaving (Definition 2.6 verbatim);
    /// bit-identical to the verifier before the reduction existed.
    #[default]
    Full,
    /// Ample-set partial-order reduction: per configuration, schedule only
    /// a mover that is statically independent of all others and invisible
    /// to the property's atoms (see `ddws_model::independence`). Verdicts
    /// are identical to [`Reduction::Full`]; counterexamples and search
    /// statistics may differ. Automatically degrades to `Full` when the
    /// property contains `X` (the reduction is sound only for
    /// stutter-invariant properties), observes a move proposition, or no
    /// mover qualifies.
    Ample,
}

/// Which engine evaluates reaction-rule bodies during successor
/// generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RuleEval {
    /// Compile each rule body once into a flat join/filter/project plan and
    /// memoize step results keyed on the *footprint* — the exact contents
    /// of the relations and queue heads the plan reads (DESIGN.md §3.8).
    /// Verdicts, successor sets and counterexamples are identical to
    /// [`RuleEval::Interpreted`]; only speed differs.
    #[default]
    Compiled,
    /// Re-interpret the FO body on every step — the oracle of record the
    /// differential harness compares the compiled engine against.
    /// Evaluation time is still metered so timings stay comparable.
    Interpreted,
}

/// Which representation the search stores configurations in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StateRepr {
    /// Hash-consed, bit-packed configurations ([`ddws_model::compact`]):
    /// relation instances and queue contents intern to dense handles over
    /// the closed input-bounded domain, successor generation works
    /// handle-to-handle without materializing [`Config`]s, and footprint
    /// keys shrink to per-relation handles. Verdicts, successor sequences
    /// and expansion counts are identical to [`StateRepr::Legacy`]; the
    /// representation-equivalence swarm pins this tuple for tuple.
    ///
    /// [`Config`]: ddws_model::Config
    #[default]
    Compact,
    /// The original owned-`Config` representation — the oracle of record
    /// the differential harness compares the compact path against.
    Legacy,
}

/// Verification options.
#[derive(Clone)]
pub struct VerifyOptions {
    /// Database handling.
    pub database: DatabaseMode,
    /// Number of fresh ("arbitrary distinct") domain values; `None` applies
    /// the heuristic of [`suggested_fresh_values`].
    pub fresh_values: Option<usize>,
    /// State budget for the product search.
    pub max_states: u64,
    /// Wall-clock budget for the whole entry-point call. Armed once when
    /// the run starts, so every valuation shares the same deadline
    /// instant; checked on the engines' ~1024-state progress stride.
    /// Exhaustion yields [`Outcome::Inconclusive`] with a resumable
    /// checkpoint (for [`Verifier::check`]) — never a panic or a hang.
    pub deadline: Option<Duration>,
    /// The clock the deadline is measured on. `None` uses the process
    /// wall clock; the deterministic simulator injects a virtual
    /// [`ManualClock`](ddws_automata::ManualClock) it advances from the
    /// fault hook, making deadline expiry a pure function of the
    /// schedule. Only deadline arithmetic reads this clock — phase
    /// timers in reports stay on real time (and are zeroed by
    /// `RunReport::redacted` for comparisons).
    pub clock: Option<ClockHandle>,
    /// Cooperative cancellation: cancel the token from any thread and
    /// every engine worker stops at its next loop iteration, yielding
    /// [`Outcome::Inconclusive`] with the recorded reason.
    pub cancel_token: Option<CancelToken>,
    /// Deterministic fault-injection hook, called once per state
    /// expansion with a 1-based global ordinal. Test-only: the fault
    /// swarm uses it to inject panics and cancellations at exact points;
    /// leave `None` in production.
    pub fault_hook: Option<FaultHook>,
    /// Product-search engine: `None` runs the sequential nested DFS
    /// (CVWY); `Some(n)` runs the parallel engine with `n` worker threads
    /// (`Some(0)` = all available cores). Verdicts are identical across
    /// engines; counterexamples may differ (see `crate::parallel`).
    pub threads: Option<usize>,
    /// Outer valuation shards: `None` walks the universal closure
    /// sequentially (the classic loop); `Some(n)` dispatches canonical
    /// valuations to `n` outer workers (`Some(0)` = all available cores),
    /// splitting the `threads` budget between outer shards and each inner
    /// product search. The first-violation cancel uses a deterministic
    /// winner rule — the lowest valuation index that does not hold — so
    /// verdict, counterexample, and redacted run report are identical
    /// across shard counts and schedules (see `DESIGN.md` §3.13). Under a
    /// fault hook or virtual clock the scheduler degrades to a
    /// deterministic cooperative round-robin on the calling thread.
    pub valuation_threads: Option<usize>,
    /// Enforce input-boundedness of the composition and property before
    /// checking (the hypothesis of Theorem 3.4). Disable only for
    /// experiments outside the decidable regime.
    pub require_input_bounded: bool,
    /// Input-boundedness checker options.
    pub ib_options: IbOptions,
    /// Partial-order reduction of peer interleavings (default
    /// [`Reduction::Full`]).
    pub reduction: Reduction,
    /// Rule-evaluation engine (default [`RuleEval::Compiled`]).
    pub rule_eval: RuleEval,
    /// Configuration representation (default [`StateRepr::Compact`]).
    pub state_repr: StateRepr,
    /// Where telemetry goes: progress snapshots while the search runs and
    /// one [`RunReport`] when it finishes. Defaults to the silent reporter,
    /// which costs one branch per ~1024 expanded states on the hot path.
    pub reporter: ReporterHandle,
    /// Minimum wall-clock spacing between progress snapshots; `None`
    /// disables progress emission entirely (the final report still goes
    /// out). Default: one second.
    pub progress_interval: Option<Duration>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            database: DatabaseMode::AllDatabases,
            fresh_values: None,
            max_states: 5_000_000,
            deadline: None,
            clock: None,
            cancel_token: None,
            fault_hook: None,
            threads: None,
            valuation_threads: None,
            require_input_bounded: true,
            ib_options: IbOptions::default(),
            reduction: Reduction::default(),
            rule_eval: RuleEval::default(),
            state_repr: StateRepr::default(),
            reporter: ReporterHandle::default(),
            progress_interval: Some(Duration::from_secs(1)),
        }
    }
}

// Manual: the fault hook is an opaque closure.
impl fmt::Debug for VerifyOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyOptions")
            .field("database", &self.database)
            .field("fresh_values", &self.fresh_values)
            .field("max_states", &self.max_states)
            .field("deadline", &self.deadline)
            .field("clock", &self.clock.is_some())
            .field("cancel_token", &self.cancel_token.is_some())
            .field("fault_hook", &self.fault_hook.is_some())
            .field("threads", &self.threads)
            .field("valuation_threads", &self.valuation_threads)
            .field("require_input_bounded", &self.require_input_bounded)
            .field("reduction", &self.reduction)
            .field("rule_eval", &self.rule_eval)
            .field("state_repr", &self.state_repr)
            .field("progress_interval", &self.progress_interval)
            .finish_non_exhaustive()
    }
}

/// Builds the shared search state for one run: rule engine per
/// `rule_eval`, configuration representation per `state_repr` (the compact
/// pool's packing widths are sized from the closed verification domain,
/// which must be fully interned before this is called).
pub(crate) fn build_shared(
    comp: &Composition,
    rule_eval: RuleEval,
    state_repr: StateRepr,
    domain: &[Value],
) -> SharedSearch {
    let shared = match rule_eval {
        RuleEval::Compiled => SharedSearch::compiled(comp),
        RuleEval::Interpreted => SharedSearch::interpreted_metered(),
    };
    match state_repr {
        StateRepr::Compact => {
            shared.with_compact(comp, crate::domain::packing_capacity(comp, domain))
        }
        StateRepr::Legacy => shared,
    }
}

/// Whether an LTL-FO formula contains the `X` operator anywhere —
/// properties with `X` are not stutter-invariant, so the ample-set
/// reduction must stay off for them.
pub(crate) fn contains_next(f: &LtlFo) -> bool {
    match f {
        LtlFo::Fo(_) => false,
        LtlFo::X(_) => true,
        LtlFo::Not(g) => contains_next(g),
        LtlFo::And(gs) | LtlFo::Or(gs) => gs.iter().any(contains_next),
        LtlFo::Implies(a, b) | LtlFo::U(a, b) => contains_next(a) || contains_next(b),
    }
}

/// Builds the independence oracle for a check, or `None` when the
/// reduction must stay off: not requested, property not stutter-invariant
/// (contains `X`), or no mover qualifies under the observed atoms.
pub(crate) fn reduction_oracle(
    comp: &Composition,
    body: &LtlFo,
    observed: &BTreeSet<RelId>,
    opts: &VerifyOptions,
) -> Option<IndependenceOracle> {
    if opts.reduction != Reduction::Ample || contains_next(body) {
        return None;
    }
    Some(IndependenceOracle::new(comp, observed))
}

/// Verification failure (as opposed to a property verdict).
///
/// Budget, deadline and cancellation stops are *not* errors — they return
/// `Ok` with [`Outcome::Inconclusive`] so the caller still gets partial
/// statistics, the emitted run report, and (when available) a resumable
/// checkpoint.
#[derive(Debug)]
pub enum VerifyError {
    /// The property failed to parse.
    Parse(ParseError),
    /// The composition or property is outside the input-bounded fragment.
    NotInputBounded(Vec<IbViolation>),
    /// A search worker panicked while expanding the product. The panic
    /// was caught and isolated: surviving workers drained, their partial
    /// statistics were merged, and exactly one abort report (attached
    /// here) was emitted. There is no checkpoint — a panicking expansion
    /// may have lost arbitrary in-flight work, so the run refuses to
    /// pretend the frontier is coherent.
    WorkerPanicked {
        /// Index of the panicking worker (0 for the sequential engine).
        worker: usize,
        /// The stringified panic payload.
        payload: String,
        /// The `worker_panicked` run report, with partial counters.
        report: Box<RunReport>,
    },
    /// Unsupported configuration.
    Unsupported(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Parse(e) => write!(f, "{e}"),
            VerifyError::NotInputBounded(vs) => {
                writeln!(f, "specification is not input-bounded (§3.1):")?;
                for v in vs {
                    writeln!(f, "  - {v}")?;
                }
                Ok(())
            }
            VerifyError::WorkerPanicked {
                worker, payload, ..
            } => {
                write!(f, "search worker {worker} panicked: {payload}")
            }
            VerifyError::Unsupported(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<ParseError> for VerifyError {
    fn from(e: ParseError) -> Self {
        VerifyError::Parse(e)
    }
}

/// The verdict.
#[derive(Debug)]
pub enum Outcome {
    /// Every run over every database (within the domain bound) satisfies
    /// the property.
    Holds,
    /// A violating run exists.
    Violated(Box<Counterexample>),
    /// The search stopped before reaching a verdict: the state budget,
    /// the deadline, or the cancel token was exhausted. The report still
    /// carries the partial statistics, and [`Inconclusive::checkpoint`]
    /// (when present) resumes the search from where it stopped.
    Inconclusive(Box<Inconclusive>),
}

impl Outcome {
    /// Whether the property holds. `false` for both `Violated` and
    /// `Inconclusive` — check [`Outcome::is_inconclusive`] before reading
    /// `!holds()` as a violation.
    pub fn holds(&self) -> bool {
        matches!(self, Outcome::Holds)
    }

    /// Whether the search stopped without a verdict.
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, Outcome::Inconclusive(_))
    }
}

/// Why and where a search stopped without a verdict.
#[derive(Debug)]
pub struct Inconclusive {
    /// The structured stop reason (budget, deadline, cancellation).
    pub reason: AbortReason,
    /// A resumable checkpoint. `Some` for [`Verifier::check`] and
    /// [`Verifier::resume`] runs; `None` for the modular and protocol
    /// entry points, whose per-run setup is cheap enough that a fresh
    /// call with laxer limits is the resume path.
    pub checkpoint: Option<Checkpoint>,
}

/// A frozen `check` run: everything needed to continue the truncated
/// product search(es) and the untouched tail of the valuation loop.
/// [`Verifier::resume`] with laxer limits reaches the same verdict a
/// fresh, unlimited [`Verifier::check`] would.
///
/// The checkpoint pins the original run's search shape — engine
/// (`threads`), outer shards (`valuation_threads`), reduction and
/// rule-evaluation mode — because the frozen frontiers' interned state
/// ids are only meaningful to the [`SharedSearch`] captured alongside
/// them. Budgets, deadline, cancellation and reporting come from the
/// options passed to `resume`.
///
/// Under valuation sharding a graceful stop can leave *several* shards
/// mid-search; each one is preserved as a leg in [`Checkpoint::shard_legs`]
/// and `resume` drains all of them plus the untouched tail.
///
/// Checkpoints are `Clone` so a supervisor can keep a pre-slice copy and
/// re-dispatch the job after a crashed quantum: the legs and valuation
/// tail are deep-copied, while the interned state space
/// (`SharedSearch`) is shared behind its `Arc` — interning is
/// append-only and idempotent, so states interned by the crashed
/// partial slice are at worst dead entries the re-run never reaches.
#[derive(Clone)]
pub struct Checkpoint {
    property: LtlFoSentence,
    observed: BTreeSet<RelId>,
    domain: Vec<Value>,
    base_db: Instance,
    universe: FactUniverse,
    /// Remaining universal-closure valuations, ascending original order,
    /// the winning (stop-deciding) one first.
    valuations: Vec<HashMap<VarId, Value>>,
    valuations_total: usize,
    /// Keeps the interned configuration/oracle ids in the legs valid.
    shared: Arc<SharedSearch>,
    /// In-flight per-shard engine frontiers, as (position within
    /// `valuations`, frozen frontier) pairs; the winner's leg first.
    legs: Vec<(usize, EngineCheckpoint<PState>)>,
    /// Aggregate statistics of the valuations *fully completed* by the
    /// interrupted run (below and above the winner; each leg carries its
    /// own counters and re-reports them cumulatively on resume).
    stats_prior: SearchStats,
    reduction: Reduction,
    rule_eval: RuleEval,
    state_repr: StateRepr,
    threads: Option<usize>,
    valuation_threads: Option<usize>,
}

impl Checkpoint {
    /// States the truncated search had visited when it stopped: fully
    /// completed valuations plus every in-flight leg.
    pub fn states_visited(&self) -> u64 {
        self.stats_prior.states_visited
            + self
                .legs
                .iter()
                .map(|(_, e)| e.states_visited())
                .sum::<u64>()
    }

    /// Universal-closure valuations not yet fully checked.
    pub fn valuations_remaining(&self) -> usize {
        self.valuations.len()
    }

    /// States visited by the deepest in-flight leg alone — the count the
    /// engine's `max_states` cap is measured against on resume. The cap
    /// is **per universal-closure valuation** (a fresh valuation starts
    /// from zero; fully completed valuations consume none of the next
    /// one's budget), so schedulers sizing the next slice's cap must add
    /// their quantum to this, not to the run-wide
    /// [`Checkpoint::states_visited`] sum — see
    /// [`Verifier::resume_slice`].
    pub fn frontier_states(&self) -> u64 {
        self.legs
            .iter()
            .map(|(_, e)| e.states_visited())
            .max()
            .unwrap_or(0)
    }

    /// In-flight per-shard engine frontiers preserved by the stop. `1`
    /// for unsharded runs; up to `valuation_threads` after a global stop
    /// (deadline, cancellation) caught several shards mid-search.
    pub fn shard_legs(&self) -> usize {
        self.legs.len()
    }

    /// The engine the checkpointed search ran (and will resume) with.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The outer shard count the run was (and will be) dispatched with.
    pub fn valuation_threads(&self) -> Option<usize> {
        self.valuation_threads
    }

    /// Approximate heap bytes the checkpoint retains for the frozen state
    /// store — interned configurations plus, under the compact
    /// representation, the extension pool. This is the dominant term of a
    /// checkpoint's memory and the payload a scale-out frontier
    /// serializer would ship, so it is what the E13 bench tracks when it
    /// asserts compact checkpoints shrink.
    pub fn approx_state_bytes(&self) -> usize {
        self.shared.approx_state_bytes()
    }
}

impl fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Checkpoint")
            .field("states_visited", &self.states_visited())
            .field("valuations_remaining", &self.valuations.len())
            .field("shard_legs", &self.legs.len())
            .field("threads", &self.threads)
            .field("valuation_threads", &self.valuation_threads)
            .field("reduction", &self.reduction)
            .field("rule_eval", &self.rule_eval)
            .field("state_repr", &self.state_repr)
            .finish_non_exhaustive()
    }
}

/// Verification report.
#[derive(Debug)]
pub struct Report {
    /// The verdict.
    pub outcome: Outcome,
    /// Aggregate search statistics across all valuations checked.
    pub stats: SearchStats,
    /// The verification domain used.
    pub domain: Vec<Value>,
    /// Number of universal-closure valuations examined.
    pub valuations_checked: usize,
    /// Valuations started per outer shard slot (one entry per shard;
    /// `[valuations_checked]` for unsharded runs). Counts are
    /// schedule-dependent under `valuation_threads > 1` with real
    /// threads, deterministic under the cooperative scheduler.
    pub shard_valuations: Vec<u64>,
    /// The run report also emitted through [`VerifyOptions::reporter`]
    /// (same counters as `stats`, plus phase timers and run labels).
    pub telemetry: RunReport,
}

/// The verifier: owns the composition (its symbol/variable tables grow as
/// properties are parsed) and a pool of fresh domain values reused across
/// checks.
pub struct Verifier {
    comp: Composition,
    fresh_pool: Vec<Value>,
}

impl Verifier {
    /// Wraps a composition for verification.
    pub fn new(comp: Composition) -> Self {
        Verifier {
            comp,
            fresh_pool: Vec::new(),
        }
    }

    /// The composition under verification.
    pub fn composition(&self) -> &Composition {
        &self.comp
    }

    /// Mutable access (e.g. to tweak [`Semantics`](ddws_model::Semantics)
    /// between checks).
    pub fn composition_mut(&mut self) -> &mut Composition {
        &mut self.comp
    }

    /// Parses an LTL-FO sentence over the composition schema (qualified
    /// names: `O.customer`, `O.?apply`, `CR.!rating`, `move_O`, …).
    pub fn parse_property(&mut self, src: &str) -> Result<LtlFoSentence, VerifyError> {
        let comp = &mut self.comp;
        let mut resolver = Resolver {
            voc: &comp.voc,
            vars: &mut comp.vars,
            symbols: &mut comp.symbols,
        };
        Ok(parse_sentence(src, &mut resolver)?)
    }

    /// Ensures the fresh pool holds at least `n` values and returns them.
    fn fresh(&mut self, n: usize) -> &[Value] {
        while self.fresh_pool.len() < n {
            self.fresh_pool.push(self.comp.symbols.fresh("_d"));
        }
        &self.fresh_pool[..n]
    }

    /// The verification domain for a property under the given options.
    pub fn domain_for(&mut self, property: &LtlFoSentence, opts: &VerifyOptions) -> Vec<Value> {
        let fresh_n = opts
            .fresh_values
            .unwrap_or_else(|| suggested_fresh_values(&self.comp, property));
        let mut dom: BTreeSet<Value> = self.comp.rule_constants.iter().copied().collect();
        property.body.visit_fo(&mut |fo| {
            let mut cs = BTreeSet::new();
            collect_constants(fo, &mut cs);
            dom.extend(cs);
        });
        if let DatabaseMode::Fixed(db) = &opts.database {
            dom.extend(db.active_domain());
        }
        dom.extend(self.fresh(fresh_n).iter().copied());
        dom.into_iter().collect()
    }

    /// Saves the composition's observation masks (restored after a check so
    /// verification tuning never leaks into direct uses of the composition).
    pub(crate) fn save_masks(&self) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
        (
            self.comp.observed_received.clone(),
            self.comp.observed_sent.clone(),
            self.comp.frozen.clone(),
        )
    }

    /// Restores masks saved by [`Verifier::save_masks`].
    pub(crate) fn restore_masks(&mut self, saved: (Vec<bool>, Vec<bool>, Vec<bool>)) {
        self.comp.observed_received = saved.0;
        self.comp.observed_sent = saved.1;
        self.comp.frozen = saved.2;
    }

    /// Checks `C ⊨ property` (Theorem 3.4's decision procedure).
    pub fn check(
        &mut self,
        property: &LtlFoSentence,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.check_inner(property, opts);
        self.restore_masks(saved);
        result
    }

    fn check_inner(
        &mut self,
        property: &LtlFoSentence,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let mut meta = crate::telemetry::RunMeta::new("check", opts);
        if opts.require_input_bounded {
            let mut violations = Vec::new();
            if let Err(vs) = self.comp.check_input_bounded(opts.ib_options) {
                violations.extend(vs);
            }
            if let Err(vs) = check_input_bounded_sentence(property, &self.comp, opts.ib_options) {
                violations.extend(vs);
            }
            if !violations.is_empty() {
                return Err(VerifyError::NotInputBounded(violations));
            }
        }

        // Track only the received/sent flags the property observes — the
        // others would double the configuration space per channel for
        // nothing.
        let mut observed = BTreeSet::new();
        property.body.visit_fo(&mut |fo| {
            observed.extend(fo.relations());
        });
        self.comp.observe_flags(&observed);
        self.comp.freeze_unobserved(&observed);

        let domain = self.domain_for(property, opts);
        let (base_db, universe) = self.database_setup(&opts.database, &domain);

        // Arc because an interrupted run's checkpoint must keep the
        // interners alive: the frozen engine frontier stores interned
        // configuration/oracle ids.
        let shared = Arc::new(build_shared(
            &self.comp,
            opts.rule_eval,
            opts.state_repr,
            &domain,
        ));
        // Fresh values are interchangeable: check valuations only up to
        // renaming of the fresh part of the domain. Moreover, the paper
        // quantifies the universal closure over the *run's* active domain
        // Dom(rho); with a fixed database and a closed composition, fresh
        // values can never enter any run (no rule, message or input can
        // introduce them), so valuations touching them are skipped -- this
        // is exact, not an approximation.
        let (constants, fresh) = self.split_domain(&domain);
        let fixed_closed = matches!(opts.database, DatabaseMode::Fixed(_)) && self.comp.is_closed();
        let fresh_for_closure: &[Value] = if fixed_closed { &[] } else { &fresh };
        let valuations =
            canonical_valuations(&property.universal_vars, &constants, fresh_for_closure);
        let valuations_total = valuations.len();
        self.run_universal_closure(
            &mut meta,
            opts,
            ClosureRun {
                property,
                observed: &observed,
                domain,
                base_db,
                universe,
                shared,
                valuations,
                legs: Vec::new(),
                stats_base: SearchStats::default(),
                valuations_total,
            },
        )
    }

    /// Convenience: parse then check.
    pub fn check_str(
        &mut self,
        property: &str,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let p = self.parse_property(property)?;
        self.check(&p, opts)
    }

    /// Runs the *first* slice of a preemptible check: a fresh search
    /// capped at `quantum` visited states. A slice that trips the cap
    /// returns [`Outcome::Inconclusive`] with a parked [`Checkpoint`];
    /// feed it to [`Verifier::resume_slice`] with the next quantum.
    /// `opts.max_states` is ignored — callers enforce their own total
    /// budget by choosing the cap via [`Verifier::slice_cap`].
    pub fn check_slice(
        &mut self,
        property: &str,
        opts: &VerifyOptions,
        quantum: u64,
    ) -> Result<Report, VerifyError> {
        let eff = VerifyOptions {
            max_states: quantum.max(1),
            ..opts.clone()
        };
        self.check_str(property, &eff)
    }

    /// Runs one more slice of a parked search: resumes `checkpoint` with
    /// the state budget raised by `quantum` *additional* states beyond
    /// what the in-flight leg has already visited (the budget counts a
    /// valuation's total visited states, so the previous cap would trip
    /// again immediately). The cap derives from
    /// [`Checkpoint::frontier_states`], not the run-wide visited sum: a
    /// `max_states` budget is per universal-closure valuation, and a
    /// sliced run must converge to the verdict of a one-shot
    /// [`Verifier::check`] under the same budget.
    pub fn resume_slice(
        &mut self,
        checkpoint: Checkpoint,
        opts: &VerifyOptions,
        quantum: u64,
    ) -> Result<Report, VerifyError> {
        let eff = VerifyOptions {
            max_states: Self::slice_cap(checkpoint.frontier_states(), quantum),
            ..opts.clone()
        };
        self.resume(checkpoint, &eff)
    }

    /// The effective state cap of a slice that has already visited
    /// `visited` states and may visit `quantum` more — the value a
    /// [`crate::AbortReason::StateBudget`] stop of that slice reports,
    /// which is how a scheduler tells a *parked* slice (cap was the
    /// synthetic slice cap) from a genuinely exhausted budget (cap was
    /// the job's own limit).
    pub fn slice_cap(visited: u64, quantum: u64) -> u64 {
        visited.saturating_add(quantum.max(1))
    }

    /// Continues a [`Checkpoint`] captured by an inconclusive
    /// [`Verifier::check`] (or a previous `resume`) on the same
    /// composition. The checkpoint pins the search shape — engine,
    /// reduction, rule evaluation — while budgets, deadline, cancellation
    /// and reporting come from `opts`. Note the state budget counts
    /// *total* visited states of the interrupted search, so resuming with
    /// the budget that tripped trips again immediately; raise it.
    ///
    /// A resumed search reaches the same verdict a fresh `check` with the
    /// laxer limits would, with cumulative statistics, and emits exactly
    /// one run report (entry point `"resume"`).
    pub fn resume(
        &mut self,
        checkpoint: Checkpoint,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        let saved = self.save_masks();
        let result = self.resume_inner(checkpoint, opts);
        self.restore_masks(saved);
        result
    }

    fn resume_inner(
        &mut self,
        cp: Checkpoint,
        opts: &VerifyOptions,
    ) -> Result<Report, VerifyError> {
        // The frozen frontier's interned ids are only meaningful to the
        // checkpointed SharedSearch, under the checkpointed engine and
        // successor semantics — so those override whatever `opts` says.
        let eff = VerifyOptions {
            reduction: cp.reduction,
            rule_eval: cp.rule_eval,
            state_repr: cp.state_repr,
            threads: cp.threads,
            valuation_threads: cp.valuation_threads,
            ..opts.clone()
        };
        let mut meta = crate::telemetry::RunMeta::new("resume", &eff);
        let Checkpoint {
            property,
            observed,
            domain,
            base_db,
            universe,
            valuations,
            valuations_total,
            shared,
            legs,
            stats_prior,
            ..
        } = cp;
        // Re-apply the masks the original check ran under (restored by
        // `resume` afterwards, exactly as `check` does).
        self.comp.observe_flags(&observed);
        self.comp.freeze_unobserved(&observed);
        self.run_universal_closure(
            &mut meta,
            &eff,
            ClosureRun {
                property: &property,
                observed: &observed,
                domain,
                base_db,
                universe,
                shared,
                valuations,
                legs,
                stats_base: stats_prior,
                valuations_total,
            },
        )
    }

    /// Replays a [`Counterexample`] returned by [`Verifier::check`] for
    /// `property` under the same options, validating that it denotes a real
    /// violating run shape: the first snapshot is an initial configuration,
    /// every step is a legal composition move, and the cycle closes.
    ///
    /// The check re-applies the observation masks and verification domain
    /// that `check` used (counterexample configurations were produced under
    /// them), and runs the composition over the counterexample's own
    /// database — for `AllDatabases` mode that is the materialized oracle,
    /// so replay validates exactly the database the search decided.
    ///
    /// Returns `Err` with a description of the first mismatch. This is the
    /// oracle the differential test harness uses to cross-validate the
    /// sequential and parallel engines' witnesses.
    pub fn replay_counterexample(
        &mut self,
        property: &LtlFoSentence,
        cex: &Counterexample,
        opts: &VerifyOptions,
    ) -> Result<(), String> {
        let saved = self.save_masks();
        let result = self.replay_inner(property, cex, opts);
        self.restore_masks(saved);
        result
    }

    fn replay_inner(
        &mut self,
        property: &LtlFoSentence,
        cex: &Counterexample,
        opts: &VerifyOptions,
    ) -> Result<(), String> {
        // Mirror check_inner's mask setup: configurations in the
        // counterexample carry only observed flags and unfrozen state.
        let mut observed = BTreeSet::new();
        property.body.visit_fo(&mut |fo| {
            observed.extend(fo.relations());
        });
        self.comp.observe_flags(&observed);
        self.comp.freeze_unobserved(&observed);
        let domain = self.domain_for(property, opts);

        let steps: Vec<&RunStep> = cex.prefix.iter().chain(cex.cycle.iter()).collect();
        if cex.cycle.is_empty() {
            return Err("counterexample has an empty cycle".into());
        }
        let first = steps.first().expect("cycle is non-empty");
        let initials = self.comp.initial_configs(&cex.database, &domain);
        if !initials.contains(&first.config) {
            return Err("first snapshot is not an initial configuration".into());
        }
        for (i, pair) in steps.windows(2).enumerate() {
            let succs =
                self.comp
                    .successors(&cex.database, &domain, &pair[0].config, pair[0].mover);
            if !succs.contains(&pair[1].config) {
                return Err(format!(
                    "step {i}: snapshot is not a {:?}-successor of its predecessor",
                    pair[0].mover
                ));
            }
        }
        let last = steps.last().expect("cycle is non-empty");
        let wrap = self
            .comp
            .successors(&cex.database, &domain, &last.config, last.mover);
        let entry = &cex.cycle[0];
        if !wrap.contains(&entry.config) {
            return Err("cycle does not close back to its entry snapshot".into());
        }
        Ok(())
    }

    /// Splits a domain into (constants, fresh) parts — fresh values are the
    /// pool-minted ones, interchangeable under valuation symmetry.
    pub(crate) fn split_domain(&self, domain: &[Value]) -> (Vec<Value>, Vec<Value>) {
        let fresh: Vec<Value> = domain
            .iter()
            .copied()
            .filter(|v| self.fresh_pool.contains(v))
            .collect();
        let constants: Vec<Value> = domain
            .iter()
            .copied()
            .filter(|v| !self.fresh_pool.contains(v))
            .collect();
        (constants, fresh)
    }

    pub(crate) fn database_setup_pub(
        &self,
        mode: &DatabaseMode,
        domain: &[Value],
    ) -> (Instance, FactUniverse) {
        self.database_setup(mode, domain)
    }

    fn database_setup(&self, mode: &DatabaseMode, domain: &[Value]) -> (Instance, FactUniverse) {
        match mode {
            DatabaseMode::Fixed(db) => (db.clone(), FactUniverse::default()),
            DatabaseMode::AllDatabases => {
                let db_rels: Vec<RelId> = self
                    .comp
                    .peers
                    .iter()
                    .flat_map(|p| p.database.iter().copied())
                    .collect();
                (
                    Instance::empty(&self.comp.voc),
                    FactUniverse::new(&self.comp.voc, &db_rels, domain),
                )
            }
        }
    }
}

/// One batch of universal-closure valuations to dispatch through the shard
/// scheduler — the shared shape between `check` (a fresh batch, no legs)
/// and `resume` (the checkpoint's remaining batch with in-flight legs).
struct ClosureRun<'a> {
    property: &'a LtlFoSentence,
    observed: &'a BTreeSet<RelId>,
    domain: Vec<Value>,
    base_db: Instance,
    universe: FactUniverse,
    shared: Arc<SharedSearch>,
    /// The valuations to dispatch, in canonical order (for `resume`: the
    /// checkpoint's remaining valuations, interrupted winner first).
    valuations: Vec<HashMap<VarId, Value>>,
    /// Frozen engine frontiers to thaw, as (position into `valuations`,
    /// frontier) pairs. Empty for a fresh `check`.
    legs: Vec<(usize, EngineCheckpoint<PState>)>,
    /// Statistics of valuations completed before this batch (a resumed
    /// run's prior legs); the batch's counters are absorbed on top.
    stats_base: SearchStats,
    /// Size of the full universal closure, reported as
    /// [`Report::valuations_checked`] regardless of where this batch
    /// starts.
    valuations_total: usize,
}

impl Verifier {
    /// Runs one batch of universal-closure valuations through the shard
    /// scheduler ([`crate::scheduler`]) and maps the classified outcome to
    /// a [`Report`].
    ///
    /// This is the convergence point of `check` and `resume`: the outer
    /// worker pool, the first-violation cancel with the deterministic
    /// winner rule, the grounded-NBA cache, and multi-leg checkpointing
    /// all live here. Grounding and translation are deterministic, so
    /// rebuilding the automaton for a resumed valuation reproduces the
    /// exact atom numbering and NBA states its frozen frontier refers to.
    #[allow(clippy::too_many_lines)]
    fn run_universal_closure(
        &self,
        meta: &mut crate::telemetry::RunMeta,
        opts: &VerifyOptions,
        run: ClosureRun<'_>,
    ) -> Result<Report, VerifyError> {
        let ClosureRun {
            property,
            observed,
            domain,
            base_db,
            universe,
            shared,
            valuations,
            legs,
            stats_base,
            valuations_total,
        } = run;
        let negated_body = ddws_logic::LtlFo::not(property.body.clone());
        let reduction = reduction_oracle(&self.comp, &property.body, observed, opts);
        let shards = crate::scheduler::effective_shards(opts);
        // The inner engines split the remaining thread budget so
        // `opts.threads` bounds total engine parallelism, not
        // per-valuation parallelism.
        let task_opts = VerifyOptions {
            threads: crate::scheduler::inner_threads(opts, shards),
            ..opts.clone()
        };
        let cache = crate::scheduler::NbaCache::new();
        let limits = meta.limits(opts);
        let deterministic = crate::scheduler::deterministic_mode(opts);
        let mut resumes: Vec<Option<EngineCheckpoint<PState>>> =
            valuations.iter().map(|_| None).collect();
        for (pos, engine) in legs {
            resumes[pos] = Some(engine);
        }
        let tasks: Vec<crate::scheduler::ValuationTask> =
            valuations.iter().cloned().zip(resumes).collect();
        let comp = &self.comp;
        let meta_ref: &crate::telemetry::RunMeta = meta;
        let runner = |valuation: &HashMap<VarId, Value>,
                      resume: Option<EngineCheckpoint<PState>>,
                      limits: &ddws_automata::SearchLimits|
         -> crate::scheduler::TaskOutput {
            let mut atoms = AtomRegistry::new();
            let nba_start = Instant::now();
            let ltl: Ltl = ground_ltlfo(&negated_body, valuation, &mut atoms);
            let nba = cache.translate(&ltl);
            cache.add_ns(nba_start.elapsed().as_nanos() as u64);
            let mut system =
                ProductSystem::new(comp, &base_db, &universe, &domain, &nba, &atoms, &shared);
            if let Some(ind) = &reduction {
                system = system.with_reduction(ind);
            }
            let tel = meta_ref.engine_telemetry(&task_opts, &shared);
            let result = match resume {
                // The interrupted valuation continues from its frozen
                // frontier; the untouched tail runs fresh searches.
                Some(engine) => resume_accepting_lasso_with(&system, engine, limits, &tel),
                None => crate::parallel::search_product(&system, &task_opts, limits, &tel),
            };
            match result {
                Ok((None, stats)) => crate::scheduler::TaskOutput {
                    stats,
                    verdict: crate::scheduler::TaskVerdict::Holds,
                },
                Ok((Some(lasso), stats)) => {
                    let cex_start = Instant::now();
                    let cex = build_counterexample(
                        &system,
                        &base_db,
                        &universe,
                        &property.universal_vars,
                        valuation,
                        lasso.prefix,
                        lasso.cycle,
                    );
                    crate::scheduler::TaskOutput {
                        stats,
                        verdict: crate::scheduler::TaskVerdict::Violated {
                            cex: Box::new(cex),
                            cex_ns: cex_start.elapsed().as_nanos() as u64,
                        },
                    }
                }
                Err(stop) => crate::scheduler::TaskOutput {
                    stats: stop.stats,
                    verdict: crate::scheduler::TaskVerdict::Stopped {
                        reason: stop.reason,
                        checkpoint: stop.checkpoint,
                    },
                },
            }
        };
        let outcome =
            crate::scheduler::run_valuation_shards(tasks, shards, &limits, deterministic, runner);
        meta.nba_ns += cache.ns();
        let fold = |batch: &SearchStats| -> SearchStats {
            let mut stats = stats_base;
            stats.absorb(batch);
            // The rule-evaluation and phase counters live in `shared` (they
            // span valuations and shards), so they overwrite rather than
            // accumulate.
            shared.fold_into(&mut stats);
            stats.nba_cache_hits = cache.hits();
            stats.nba_cache_misses = cache.misses();
            stats
        };
        match outcome {
            crate::scheduler::ShardOutcome::AllHold { stats, per_shard } => {
                let stats = fold(&stats);
                let telemetry = meta.finish(opts, "holds", &stats, domain.len(), valuations_total);
                Ok(Report {
                    outcome: Outcome::Holds,
                    stats,
                    domain,
                    valuations_checked: valuations_total,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
            crate::scheduler::ShardOutcome::Violated {
                index: _,
                cex,
                cex_ns,
                stats,
                per_shard,
            } => {
                let stats = fold(&stats);
                meta.cex_ns += cex_ns;
                let telemetry =
                    meta.finish(opts, "violated", &stats, domain.len(), valuations_total);
                Ok(Report {
                    outcome: Outcome::Violated(cex),
                    stats,
                    domain,
                    valuations_checked: valuations_total,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
            crate::scheduler::ShardOutcome::Stopped {
                index: _,
                reason,
                stats,
                stats_prior,
                remaining,
                legs,
                per_shard,
            } => {
                let stats = fold(&stats);
                if let AbortReason::WorkerPanicked { worker, payload } = &reason {
                    let report = meta.finish_abort(
                        opts,
                        &reason,
                        false,
                        &stats,
                        domain.len(),
                        valuations_total,
                    );
                    return Err(VerifyError::WorkerPanicked {
                        worker: *worker,
                        payload: payload.clone(),
                        report: Box::new(report),
                    });
                }
                // Anything left to verify makes the stop resumable — even
                // with no in-flight legs, the remaining valuations rerun
                // as fresh searches (that is exactly what resume does for
                // the untouched tail).
                let resumable = !remaining.is_empty();
                let telemetry = meta.finish_abort(
                    opts,
                    &reason,
                    resumable,
                    &stats,
                    domain.len(),
                    valuations_total,
                );
                let checkpoint = if resumable {
                    let mut prior = stats_base;
                    prior.absorb(&stats_prior);
                    Some(Checkpoint {
                        property: property.clone(),
                        observed: observed.clone(),
                        domain: domain.clone(),
                        base_db,
                        universe,
                        valuations: remaining.iter().map(|&i| valuations[i].clone()).collect(),
                        valuations_total,
                        shared: Arc::clone(&shared),
                        legs,
                        stats_prior: prior,
                        reduction: opts.reduction,
                        rule_eval: opts.rule_eval,
                        state_repr: opts.state_repr,
                        threads: opts.threads,
                        valuation_threads: opts.valuation_threads,
                    })
                } else {
                    None
                };
                Ok(Report {
                    outcome: Outcome::Inconclusive(Box::new(Inconclusive { reason, checkpoint })),
                    stats,
                    domain,
                    valuations_checked: valuations_total,
                    shard_valuations: per_shard,
                    telemetry,
                })
            }
        }
    }
}

/// Rebuilds a [`Counterexample`] from a product lasso: fork (oracle-growth)
/// pseudo-steps are elided, the final oracle is materialized as the
/// witnessing database.
pub(crate) fn build_counterexample(
    system: &ProductSystem<'_>,
    base_db: &Instance,
    universe: &FactUniverse,
    universal_vars: &[VarId],
    valuation: &std::collections::HashMap<VarId, Value>,
    prefix: Vec<PState>,
    cycle: Vec<PState>,
) -> Counterexample {
    let comp = system.comp;
    // The largest oracle along the path is the one of the cycle states
    // (oracles only grow, and never grow inside a cycle).
    let final_oracle: Oracle = match cycle.first() {
        Some(PState::Run { oracle, .. }) | Some(PState::Boot { oracle }) => {
            (*system.oracle(*oracle)).clone()
        }
        None => Oracle::undecided(universe.len()),
    };
    let mut database = base_db.clone();
    let decided = final_oracle.materialize(&comp.voc, universe);
    for (rel, _) in comp.voc.iter() {
        let r = decided.relation(rel);
        if !r.is_empty() {
            database.set_relation(rel, database.relation(rel).union(r));
        }
    }

    // Elide fork steps: a state is a real snapshot iff the next state on the
    // path has the same oracle (fork edges strictly grow it) — the last
    // state before the cycle and all cycle states are always real.
    let oracle_of = |s: &PState| -> u32 {
        match s {
            PState::Boot { oracle } | PState::Run { oracle, .. } => *oracle,
        }
    };
    let full: Vec<PState> = prefix.iter().chain(cycle.iter()).copied().collect();
    let mut steps: Vec<RunStep> = Vec::new();
    let mut cycle_start_in_steps = 0;
    for (i, s) in full.iter().enumerate() {
        let is_fork_source = full
            .get(i + 1)
            .map(|n| oracle_of(n) != oracle_of(s))
            .unwrap_or(false);
        if i == prefix.len() {
            cycle_start_in_steps = steps.len();
        }
        if is_fork_source {
            continue;
        }
        if let PState::Run { config, mover, .. } = s {
            steps.push(RunStep {
                config: (*system.config(*config)).clone(),
                mover: *mover,
            });
        }
    }
    let cycle_steps = steps.split_off(cycle_start_in_steps);
    let frozen_rels: Vec<String> = comp
        .voc
        .iter()
        .filter(|(rel, _)| comp.frozen[rel.index()])
        .map(|(_, d)| d.name.clone())
        .collect();
    Counterexample {
        database,
        frozen_rels,
        valuation: universal_vars
            .iter()
            .map(|v| (*v, *valuation.get(v).expect("valuation covers closure")))
            .collect(),
        prefix: steps,
        cycle: cycle_steps,
    }
}
