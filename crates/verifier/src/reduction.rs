//! The composition → single-peer reduction behind Theorem 3.4.
//!
//! The paper proves decidability of composition verification by a PTIME
//! reduction to the verification of a *single* peer with no queues (plus
//! k-lookback): queues become state relations, the scheduler becomes a user
//! input, and channel nondeterminism becomes input nondeterminism. This
//! module implements that construction:
//!
//! * each peer relation `P.R` becomes a relation `P_R` of the single peer
//!   `SYS`;
//! * each channel `q` with bound `k` becomes slot relations
//!   `q_slot0 … q_slot{k-1}` plus occupancy flags `q_has0 …`; enqueue
//!   inserts at the first free slot, a receiver move shifts every slot
//!   down by one (all with ordinary state rules — the conflict-is-no-op
//!   semantics of Definition 2.4 makes the shift work);
//! * a scheduler input `sched` (options = the peer names) picks which
//!   peer's move the step simulates; every simulated rule is guarded by
//!   `sched("P")`;
//! * a **lossy flat** send becomes a `pick_q` input whose options are the
//!   send rule's results: the user's pick is the channel's
//!   nondeterministic tuple choice, and *declining to pick is exactly
//!   message loss* — which is why the reduction (and decidability) works
//!   for lossy channels;
//! * a **lossy nested** send gets a propositional `deliver_q` input
//!   (loss = the user declines); a **perfect nested** send inserts its
//!   result directly — matching the remark after Theorem 3.4 that perfect
//!   *nested* channels stay decidable;
//! * a **perfect flat** channel has no faithful encoding here (the pick
//!   input can always abstain) — and indeed Theorem 3.7 shows that case is
//!   undecidable; the reduction rejects it.
//!
//! Properties over the composition schema are translated alongside
//! ([`translate_property_source`]): `P.R ↦ P_R`, in-queue atoms
//! `P.?q ↦ q_slot0`, out-queue atoms likewise (exact for 1-bounded queues),
//! `empty_q ↦ ¬q_has0` and `move_P ↦ sched("#P")`.
//!
//! **Timing caveat.** In the composition semantics implemented by
//! `ddws-model`, a peer's input is chosen when the peer moves and then
//! frozen; in the reduced peer, all simulated inputs are re-chosen every
//! step (there is only one peer). The two agree on which values are
//! *available* at each simulated move exactly when the input options are
//! stable between a peer's moves; the equivalence tests in
//! `tests/reduction.rs` exercise compositions in and out of that regime.

use ddws_logic::{Fo, Term, VarId};
use ddws_model::{
    builder::BuildError, Channel, Composition, CompositionBuilder, Endpoint, QueueKind, Semantics,
};
use ddws_relational::RelId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// The reduced system: the single-peer composition plus the name maps
/// needed to translate databases and properties.
#[derive(Debug)]
pub struct ReducedSystem {
    /// A closed composition with exactly one peer (`SYS`) and no channels.
    pub composition: Composition,
    /// Maps original qualified relation names to reduced ones
    /// (`O.customer` → `O_customer`).
    pub rel_names: HashMap<String, String>,
    /// The scheduler constants, one per original peer (`#P` values of the
    /// `sched` input).
    pub peer_constants: Vec<String>,
}

/// Errors specific to the reduction.
#[derive(Debug)]
pub enum ReductionError {
    /// Perfect flat channels cannot be reduced (Theorem 3.7: that regime is
    /// undecidable, so no such reduction can exist).
    PerfectFlatChannel(String),
    /// Channels from a peer to itself are not supported by the slot
    /// encoding (enqueue and dequeue would collide in one step).
    SelfLoop(String),
    /// Open compositions have no single-peer equivalent without an
    /// environment model.
    OpenComposition,
    /// The reduced specification failed to build (internal error).
    Build(BuildError),
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::PerfectFlatChannel(q) => write!(
                f,
                "channel `{q}` is flat and perfect: no single-peer reduction exists \
                 (cf. Theorem 3.7)"
            ),
            ReductionError::SelfLoop(q) => {
                write!(f, "channel `{q}` connects a peer to itself (unsupported)")
            }
            ReductionError::OpenComposition => {
                write!(
                    f,
                    "open compositions cannot be reduced (no environment model)"
                )
            }
            ReductionError::Build(e) => write!(f, "reduced specification invalid: {e}"),
        }
    }
}

impl std::error::Error for ReductionError {}

/// Performs the reduction.
pub fn reduce_to_single_peer(comp: &Composition) -> Result<ReducedSystem, ReductionError> {
    if !comp.is_closed() {
        return Err(ReductionError::OpenComposition);
    }
    for ch in &comp.channels {
        if ch.sender == ch.receiver {
            return Err(ReductionError::SelfLoop(ch.name.clone()));
        }
        if ch.kind == QueueKind::Flat && !ch.lossy {
            return Err(ReductionError::PerfectFlatChannel(ch.name.clone()));
        }
    }
    let k = comp.semantics.queue_bound;

    let mut b = CompositionBuilder::new();
    b.semantics(Semantics {
        // No channels remain; keep the rest of the run semantics.
        ..comp.semantics
    });

    let mut rel_names: HashMap<String, String> = HashMap::new();
    let mut peer_constants = Vec::new();

    {
        let mut sys = b.peer("SYS");

        // Scheduler: one constant per peer; the user picks who moves.
        let sched_options = comp
            .peers
            .iter()
            .map(|p| format!("x = \"#{}\"", p.name))
            .collect::<Vec<_>>()
            .join(" or ");
        sys.input("sched", 1);
        sys.input_rule("sched", &["x"], &sched_options);
        for p in &comp.peers {
            peer_constants.push(format!("#{}", p.name));
        }

        // Schemas.
        for peer in &comp.peers {
            for &r in &peer.database {
                let local = reduced_name(comp, r);
                rel_names.insert(comp.voc.name(r).to_owned(), local.clone());
                sys.database(&local, comp.voc.arity(r));
            }
            for &r in &peer.states {
                let local = reduced_name(comp, r);
                rel_names.insert(comp.voc.name(r).to_owned(), local.clone());
                sys.state(&local, comp.voc.arity(r));
            }
            for &r in &peer.actions {
                let local = reduced_name(comp, r);
                rel_names.insert(comp.voc.name(r).to_owned(), local.clone());
                sys.action(&local, comp.voc.arity(r));
            }
            for (idx, &r) in peer.inputs.iter().enumerate() {
                let local = reduced_name(comp, r);
                rel_names.insert(comp.voc.name(r).to_owned(), local.clone());
                sys.input(&local, comp.voc.arity(r));
                // The peer's `prevI` chain becomes explicit state.
                for (j, &prev_rel) in peer.prev[idx].iter().enumerate() {
                    let prev_local = format!("{}_prev{}", local, j + 1);
                    rel_names.insert(comp.voc.name(prev_rel).to_owned(), prev_local.clone());
                    sys.state(&prev_local, comp.voc.arity(prev_rel));
                }
            }
        }
        // Queue slots.
        for ch in &comp.channels {
            for j in 0..k {
                sys.state(&slot_name(ch, j), ch.arity);
                sys.state(&has_name(ch, j), 0);
            }
            if ch.kind == QueueKind::Flat {
                // The pick input simulating the nondeterministic choice +
                // lossiness.
                sys.input(&format!("pick_{}", ch.name), ch.arity);
            } else if ch.lossy {
                sys.input(&format!("deliver_{}", ch.name), 0);
            }
        }
    }

    // Rules. Build the body translator first: it needs the full name map.
    let translate = |peer_name: &str, fo: &Fo| -> String {
        let guarded = translate_body(comp, fo);
        format!("sched(\"#{peer_name}\") and ({guarded})")
    };

    for peer in &comp.peers {
        let pname = &peer.name;
        let mut sys = b.peer("SYS");

        // Input rules: options must be computable without reading inputs,
        // so they cannot be sched-guarded; the *use* of the input is.
        for rule in &peer.input_rules {
            let local = reduced_name(comp, rule.rel);
            if comp.voc.arity(rule.rel) == 0 && rule.body == Fo::True {
                continue; // default rule regenerated by the builder
            }
            let head: Vec<String> = head_names(comp, &rule.head);
            let head_refs: Vec<&str> = head.iter().map(String::as_str).collect();
            sys.input_rule(&local, &head_refs, &translate_body(comp, &rule.body));
        }

        // State rules.
        for sr in &peer.state_rules {
            let local = reduced_name(comp, sr.rel);
            let head: Vec<String> = head_names(comp, &sr.head);
            let head_refs: Vec<&str> = head.iter().map(String::as_str).collect();
            if let Some(ins) = &sr.insert {
                sys.state_insert_rule(&local, &head_refs, &translate(pname, ins));
            }
            if let Some(del) = &sr.delete {
                sys.state_delete_rule(&local, &head_refs, &translate(pname, del));
            }
        }

        // prev chains: replace-on-nonempty-input semantics.
        for (idx, &input_rel) in peer.inputs.iter().enumerate() {
            let input_local = reduced_name(comp, input_rel);
            let arity = comp.voc.arity(input_rel);
            let vars: Vec<String> = (0..arity).map(|i| format!("v{i}")).collect();
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            let tuple = vars.join(", ");
            let nonempty = if arity == 0 {
                input_local.clone()
            } else {
                let evars = vars.join(", ");
                format!("exists {evars}: {input_local}({evars})")
            };
            let mut source_now = if arity == 0 {
                input_local.clone()
            } else {
                format!("{input_local}({tuple})")
            };
            for (j, &prev_rel) in peer.prev[idx].iter().enumerate() {
                let prev_local = format!("{}_prev{}", reduced_name(comp, input_rel), j + 1);
                let _ = prev_rel;
                let insert = format!("sched(\"#{pname}\") and ({nonempty}) and ({source_now})");
                let delete = format!(
                    "sched(\"#{pname}\") and ({nonempty}) and {prev}",
                    prev = if arity == 0 {
                        prev_local.clone()
                    } else {
                        format!("{prev_local}({tuple})")
                    }
                );
                if arity == 0 {
                    sys.state_insert_rule(&prev_local, &[], &insert);
                    sys.state_delete_rule(&prev_local, &[], &delete);
                } else {
                    sys.state_insert_rule(&prev_local, &var_refs, &insert);
                    sys.state_delete_rule(&prev_local, &var_refs, &delete);
                }
                // The next link shifts from this one.
                source_now = if arity == 0 {
                    prev_local.clone()
                } else {
                    format!("{prev_local}({tuple})")
                };
            }
        }

        // Action rules.
        for ar in &peer.action_rules {
            let local = reduced_name(comp, ar.rel);
            let head: Vec<String> = head_names(comp, &ar.head);
            let head_refs: Vec<&str> = head.iter().map(String::as_str).collect();
            sys.action_rule(&local, &head_refs, &translate(pname, &ar.body));
        }

        // Sends: enqueue into the first free slot of the receiver's queue.
        // All slot rules use the canonical head variables `rv__i`, shared
        // with the dequeue-shift rules (the builder requires one head per
        // state relation).
        for (cid, rule) in &peer.send_rules {
            let ch = &comp.channels[cid.index()];
            let canon: Vec<String> = (0..ch.arity).map(|i| format!("rv__{i}")).collect();
            let canon_refs: Vec<&str> = canon.iter().map(String::as_str).collect();
            let tuple = canon.join(", ");
            let rename: HashMap<VarId, String> = rule
                .head
                .iter()
                .copied()
                .zip(canon.iter().cloned())
                .collect();
            let body = render_fo_renamed(comp, &rule.body, &rename);

            // What lands in the queue this step, as a formula over the
            // canonical variables.
            let (payload, fired): (String, String) = match ch.kind {
                QueueKind::Flat => {
                    // The pick input simulates the channel's nondeterministic
                    // tuple choice. Its options cannot be the send rule's
                    // results (input rules may not read inputs, Definition
                    // 2.1), so the pick ranges over the whole domain and the
                    // *enqueue rule* checks it against the send body at use
                    // time - a mismatched or absent pick is exactly message
                    // loss, which the lossy semantics permits.
                    let pick = format!("pick_{}", ch.name);
                    if ch.arity == 0 {
                        sys.input_rule(&pick, &[], "true");
                        (
                            format!("{pick} and ({body})"),
                            format!("{pick} and ({body})"),
                        )
                    } else {
                        sys.input_rule(&pick, &canon_refs, "true");
                        let payload = format!("{pick}({tuple}) and ({body})");
                        let fired = format!("exists {tuple}: {pick}({tuple}) and ({body})");
                        (payload, fired)
                    }
                }
                QueueKind::Nested => {
                    let guarded = format!("sched(\"#{pname}\") and ({body})");
                    if ch.lossy {
                        let deliver = format!("deliver_{}", ch.name);
                        (
                            format!("{deliver} and {guarded}"),
                            format!("{deliver} and sched(\"#{pname}\")"),
                        )
                    } else {
                        // Perfect nested channel: a message (possibly empty)
                        // is enqueued on every firing; under
                        // `nested_send_skips_empty` only non-empty results
                        // enqueue, which the `fired` guard mirrors.
                        let fired = if comp.semantics.nested_send_skips_empty {
                            if ch.arity == 0 {
                                format!("sched(\"#{pname}\") and ({body})")
                            } else {
                                format!("sched(\"#{pname}\") and (exists {tuple}: {body})")
                            }
                        } else {
                            format!("sched(\"#{pname}\")")
                        };
                        (guarded, fired)
                    }
                }
            };
            // The flat payload must also be sched-guarded.
            let payload = match ch.kind {
                QueueKind::Flat => format!("sched(\"#{pname}\") and {payload}"),
                QueueKind::Nested => payload,
            };
            let fired = match ch.kind {
                QueueKind::Flat => format!("sched(\"#{pname}\") and ({fired})"),
                QueueKind::Nested => fired,
            };

            for j in 0..k {
                // Insert into slot j iff slots 0..j are occupied and j free.
                let mut occ = String::new();
                for l in 0..j {
                    let _ = write!(occ, "{} and ", has_name(ch, l));
                }
                let _ = write!(occ, "not {}", has_name(ch, j));
                sys.state_insert_rule(
                    &slot_name(ch, j),
                    &canon_refs,
                    &format!("({payload}) and {occ}"),
                );
                sys.state_insert_rule(&has_name(ch, j), &[], &format!("({fired}) and {occ}"));
            }
        }
    }

    // Receiver-side dequeues: when the receiving peer is scheduled and the
    // channel is dequeued by its rules, shift every slot down.
    for peer in &comp.peers {
        let pname = &peer.name;
        let mut sys = b.peer("SYS");
        for &cid in &peer.dequeues {
            let ch = &comp.channels[cid.index()];
            let vars: Vec<String> = (0..ch.arity).map(|i| format!("rv__{i}")).collect();
            let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
            let tuple = vars.join(", ");
            for j in 0..k {
                let this_slot = slot_name(ch, j);
                let this_has = has_name(ch, j);
                // Delete current content / flag...
                sys.state_delete_rule(
                    &this_slot,
                    &var_refs,
                    &format!("sched(\"#{pname}\") and {this_slot}({tuple})"),
                );
                sys.state_delete_rule(&this_has, &[], &format!("sched(\"#{pname}\")"));
                // ...and pull the next slot's content in (conflicts keep
                // shared tuples, Definition 2.4).
                if j + 1 < k {
                    let next_slot = slot_name(ch, j + 1);
                    let next_has = has_name(ch, j + 1);
                    sys.state_insert_rule(
                        &this_slot,
                        &var_refs,
                        &format!("sched(\"#{pname}\") and {next_slot}({tuple})"),
                    );
                    sys.state_insert_rule(
                        &this_has,
                        &[],
                        &format!("sched(\"#{pname}\") and {next_has}"),
                    );
                }
            }
        }
    }

    let composition = b.build().map_err(ReductionError::Build)?;
    Ok(ReducedSystem {
        composition,
        rel_names,
        peer_constants,
    })
}

/// Translates a database instance over the original schema into one over
/// the reduced peer's schema. Values are re-interned into the reduced
/// composition's symbol table by name.
pub fn translate_database(
    reduced: &mut ReducedSystem,
    comp: &Composition,
    db: &ddws_relational::Instance,
) -> ddws_relational::Instance {
    let mut out = ddws_relational::Instance::empty(&reduced.composition.voc);
    for peer in &comp.peers {
        for &rel in &peer.database {
            let name = comp.voc.name(rel);
            let local = &reduced.rel_names[name];
            let target = reduced
                .composition
                .voc
                .lookup(&format!("SYS.{local}"))
                .expect("reduced database relation exists");
            for tuple in db.relation(rel).iter() {
                let mapped: ddws_relational::Tuple = tuple
                    .values()
                    .iter()
                    .map(|&v| {
                        let name = comp.symbols.name(v).to_owned();
                        reduced.composition.symbols.intern(&name)
                    })
                    .collect();
                out.relation_mut(target).insert(mapped);
            }
        }
    }
    out
}

/// Translates a property's *source text* into the reduced schema, to be
/// re-parsed against the reduced composition (ASTs cannot be carried over:
/// the two compositions have distinct variable and symbol tables).
///
/// Handles peer relations (`O.customer` -> `SYS.O_customer`), flat/nested
/// queue atoms (`O.?apply`, `A.!apply` -> `SYS.q_apply_slot0` -- exact for
/// `queue_bound == 1`, where the first and last message coincide), queue
/// states (`O.empty_apply` -> `(not SYS.q_apply_has0)`) and move
/// propositions (`move_O` -> `SYS.sched("#O")`). `received_q`/`sent_q`
/// flags have no reduced image and are left untouched (they will fail to
/// resolve, surfacing the limitation).
pub fn translate_property_source(reduced: &ReducedSystem, comp: &Composition, src: &str) -> String {
    assert_eq!(
        comp.semantics.queue_bound, 1,
        "source-level queue-atom translation is exact only for 1-bounded queues"
    );
    // Longest-first replacement avoids prefix collisions.
    let mut subs: Vec<(String, String)> = reduced
        .rel_names
        .iter()
        .map(|(orig, local)| (orig.clone(), format!("SYS.{local}")))
        .collect();
    for ch in &comp.channels {
        let slot0 = format!("SYS.{}", slot_name(ch, 0));
        if let Endpoint::Peer(pid) = ch.receiver {
            let pname = &comp.peers[pid.index()].name;
            subs.push((format!("{pname}.?{}", ch.name), slot0.clone()));
            subs.push((
                format!("{pname}.empty_{}", ch.name),
                format!("(not SYS.{})", has_name(ch, 0)),
            ));
        }
        if let Endpoint::Peer(pid) = ch.sender {
            let pname = &comp.peers[pid.index()].name;
            subs.push((format!("{pname}.!{}", ch.name), slot0.clone()));
        }
    }
    for p in &comp.peers {
        subs.push((
            format!("move_{}", p.name),
            format!("SYS.sched(\"#{}\")", p.name),
        ));
    }
    subs.sort_by_key(|(orig, _)| std::cmp::Reverse(orig.len()));
    let mut out = src.to_owned();
    for (orig, new) in subs {
        out = out.replace(&orig, &new);
    }
    out
}

/// `O.customer` → `O_customer` (the reduced local name).
fn reduced_name(comp: &Composition, rel: RelId) -> String {
    comp.voc.name(rel).replace(['.', '?', '!'], "_")
}

fn slot_name(ch: &Channel, j: usize) -> String {
    format!("q_{}_slot{j}", ch.name)
}

fn has_name(ch: &Channel, j: usize) -> String {
    format!("q_{}_has{j}", ch.name)
}

fn head_names(comp: &Composition, head: &[VarId]) -> Vec<String> {
    head.iter().map(|&v| comp.vars.name(v).to_owned()).collect()
}

fn channel_of(comp: &Composition, rel: RelId, incoming: bool) -> Option<&Channel> {
    comp.channels.iter().find(|c| {
        if incoming {
            c.in_rel == Some(rel)
        } else {
            c.out_rel == rel
        }
    })
}

/// Translates a rule body into source text over the reduced namespace.
/// (Rewriting to `RelId`s directly is impossible before the reduced
/// composition exists, so bodies round-trip through the parser.)
fn translate_body(comp: &Composition, fo: &Fo) -> String {
    render_fo(comp, fo)
}

/// Renders a formula over the original schema as source text in the reduced
/// namespace, renaming the given free variables (used to canonicalize slot
/// rule heads). Bound variables keep their names; original specifications
/// never use the reserved `rv__` prefix, so capture is impossible.
fn render_fo_renamed(comp: &Composition, fo: &Fo, rename: &HashMap<VarId, String>) -> String {
    // Bound variables shadow renames.
    fn go(comp: &Composition, fo: &Fo, rename: &HashMap<VarId, String>) -> String {
        match fo {
            Fo::Exists(vs, g) | Fo::Forall(vs, g) => {
                let mut inner = rename.clone();
                for v in vs {
                    inner.remove(v);
                }
                let kw = if matches!(fo, Fo::Exists(..)) {
                    "exists"
                } else {
                    "forall"
                };
                let names: Vec<&str> = vs.iter().map(|&v| comp.vars.name(v)).collect();
                format!("({kw} {}: {})", names.join(", "), go(comp, g, &inner))
            }
            Fo::True => "true".into(),
            Fo::False => "false".into(),
            Fo::Eq(a, b) => format!(
                "{} = {}",
                render_term_renamed(comp, a, rename),
                render_term_renamed(comp, b, rename)
            ),
            Fo::Atom(..) => {
                // Delegate to render_fo's atom logic but with renamed terms:
                // easiest is to rebuild the atom text here.
                render_atom_renamed(comp, fo, rename)
            }
            Fo::Not(g) => format!("not ({})", go(comp, g, rename)),
            Fo::And(gs) => {
                if gs.is_empty() {
                    "true".into()
                } else {
                    gs.iter()
                        .map(|g| format!("({})", go(comp, g, rename)))
                        .collect::<Vec<_>>()
                        .join(" and ")
                }
            }
            Fo::Or(gs) => {
                if gs.is_empty() {
                    "false".into()
                } else {
                    gs.iter()
                        .map(|g| format!("({})", go(comp, g, rename)))
                        .collect::<Vec<_>>()
                        .join(" or ")
                }
            }
            Fo::Implies(a, b) => {
                format!("({}) -> ({})", go(comp, a, rename), go(comp, b, rename))
            }
        }
    }
    go(comp, fo, rename)
}

fn render_term_renamed(comp: &Composition, t: &Term, rename: &HashMap<VarId, String>) -> String {
    match t {
        Term::Var(v) => rename
            .get(v)
            .cloned()
            .unwrap_or_else(|| comp.vars.name(*v).to_owned()),
        Term::Const(c) => format!("\"{}\"", comp.symbols.name(*c)),
    }
}

fn render_atom_renamed(comp: &Composition, fo: &Fo, rename: &HashMap<VarId, String>) -> String {
    let Fo::Atom(rel, args) = fo else {
        unreachable!()
    };
    use ddws_logic::input_bounded::RelClass::*;
    let name = match comp.class(*rel) {
        InFlat | InNested => {
            let ch = channel_of(comp, *rel, true).expect("in-queue atom has a channel");
            slot_name(ch, 0)
        }
        QueueState => {
            let ch = comp
                .channels
                .iter()
                .find(|c| c.empty_rel == Some(*rel))
                .expect("queue state has a channel");
            return format!("not {}", has_name(ch, 0));
        }
        _ => reduced_name(comp, *rel),
    };
    if args.is_empty() {
        name
    } else {
        let rendered: Vec<String> = args
            .iter()
            .map(|t| render_term_renamed(comp, t, rename))
            .collect();
        format!("{name}({})", rendered.join(", "))
    }
}

/// Renders a formula over the original schema as source text in the reduced
/// namespace.
fn render_fo(comp: &Composition, fo: &Fo) -> String {
    match fo {
        Fo::True => "true".into(),
        Fo::False => "false".into(),
        Fo::Eq(a, b) => format!("{} = {}", render_term(comp, a), render_term(comp, b)),
        Fo::Atom(rel, args) => {
            use ddws_logic::input_bounded::RelClass::*;
            let name = match comp.class(*rel) {
                InFlat | InNested => {
                    let ch = channel_of(comp, *rel, true).expect("in-queue atom has a channel");
                    slot_name(ch, 0)
                }
                QueueState => {
                    let ch = comp
                        .channels
                        .iter()
                        .find(|c| c.empty_rel == Some(*rel))
                        .expect("queue state has a channel");
                    let inner = has_name(ch, 0);
                    // empty_q ≡ ¬q_has0; handled via wrapper below.
                    return format!("not {inner}");
                }
                _ => reduced_name(comp, *rel),
            };
            if args.is_empty() {
                name
            } else {
                let rendered: Vec<String> = args.iter().map(|t| render_term(comp, t)).collect();
                format!("{name}({})", rendered.join(", "))
            }
        }
        Fo::Not(g) => format!("not ({})", render_fo(comp, g)),
        Fo::And(gs) => render_nary(comp, gs, "and", "true"),
        Fo::Or(gs) => render_nary(comp, gs, "or", "false"),
        Fo::Implies(a, b) => format!("({}) -> ({})", render_fo(comp, a), render_fo(comp, b)),
        Fo::Exists(vs, g) => render_quant(comp, "exists", vs, g),
        Fo::Forall(vs, g) => render_quant(comp, "forall", vs, g),
    }
}

fn render_nary(comp: &Composition, gs: &[Fo], op: &str, empty: &str) -> String {
    if gs.is_empty() {
        return empty.into();
    }
    gs.iter()
        .map(|g| format!("({})", render_fo(comp, g)))
        .collect::<Vec<_>>()
        .join(&format!(" {op} "))
}

fn render_quant(comp: &Composition, kw: &str, vs: &[VarId], g: &Fo) -> String {
    let names: Vec<&str> = vs.iter().map(|&v| comp.vars.name(v)).collect();
    format!("({kw} {}: {})", names.join(", "), render_fo(comp, g))
}

fn render_term(comp: &Composition, t: &Term) -> String {
    match t {
        Term::Var(v) => comp.vars.name(*v).to_owned(),
        Term::Const(c) => format!("\"{}\"", comp.symbols.name(*c)),
    }
}
