//! Engine dispatch: the sequential nested DFS vs. the multi-threaded
//! product search, selected by [`VerifyOptions::threads`].
//!
//! The parallel engine is `ddws-automata`'s
//! [`find_accepting_lasso_budget_parallel`] run over the verifier's
//! [`ProductSystem`], whose caches are sharded precisely so that many
//! workers can expand it at once (see [`product`](crate::product)).
//!
//! Contract (documented in DESIGN.md, exercised by `tests/differential.rs`):
//!
//! * **verdicts are engine-independent** — for any budget at least the
//!   reachable product size, `threads: None` and `threads: Some(n)` return
//!   the same `Holds`/`Violated`/`Budget` answer for every `n`;
//! * **counterexamples may differ** — both engines return *valid* violating
//!   lassos, but not necessarily the same one; the sequential engine's
//!   witness is additionally stable run-to-run;
//! * **budgets still bind** — the parallel engine overshoots `max_states`
//!   by at most one state per worker before failing.

use crate::product::{PState, ProductSystem};
use crate::verify::{VerifyError, VerifyOptions};
use ddws_automata::emptiness::{find_accepting_lasso_budget_with, Lasso, SearchStats};
use ddws_automata::parallel::find_accepting_lasso_budget_parallel_with;
use ddws_telemetry::EngineTelemetry;

/// Runs the product search with the engine `opts.threads` selects:
/// `None` → sequential nested DFS (CVWY), `Some(n)` → parallel
/// reachability + SCC lasso extraction with `n` workers (`Some(0)` →
/// all available cores). `tel` carries the run's progress reporter into
/// the engine's hot loop; pass [`EngineTelemetry::silent`] when no one is
/// listening.
pub fn search_product(
    system: &ProductSystem<'_>,
    opts: &VerifyOptions,
    tel: &EngineTelemetry<'_>,
) -> Result<(Option<Lasso<PState>>, SearchStats), VerifyError> {
    match opts.threads {
        None => find_accepting_lasso_budget_with(system, opts.max_states, tel),
        Some(n) => find_accepting_lasso_budget_parallel_with(system, opts.max_states, n, tel),
    }
    .map_err(VerifyError::Budget)
}
