//! Engine dispatch: the sequential nested DFS vs. the multi-threaded
//! product search, selected by [`VerifyOptions::threads`].
//!
//! The parallel engine is `ddws-automata`'s
//! [`find_accepting_lasso_limits_parallel_with`] run over the verifier's
//! [`ProductSystem`], whose caches are sharded precisely so that many
//! workers can expand it at once (see [`product`](crate::product)).
//!
//! Contract (documented in DESIGN.md, exercised by `tests/differential.rs`
//! and `tests/faults.rs`):
//!
//! * **verdicts are engine-independent** — for any budget at least the
//!   reachable product size, `threads: None` and `threads: Some(n)` return
//!   the same `Holds`/`Violated`/`Inconclusive` answer for every `n`;
//! * **counterexamples may differ** — both engines return *valid* violating
//!   lassos, but not necessarily the same one; the sequential engine's
//!   witness is additionally stable run-to-run;
//! * **limits stop gracefully** — exhausting the state budget, the
//!   deadline, or the cancel token yields a typed [`Interrupted`] with
//!   partial statistics and (except after a worker panic) a resumable
//!   checkpoint; the parallel engine overshoots `max_states` by at most
//!   one state per worker before stopping.
//!
//! [`Interrupted`]: ddws_automata::Interrupted

use crate::product::{PState, ProductSystem};
use crate::verify::VerifyOptions;
use ddws_automata::emptiness::find_accepting_lasso_limits_with;
use ddws_automata::parallel::find_accepting_lasso_limits_parallel_with;
use ddws_automata::{LimitedResult, SearchLimits};
use ddws_telemetry::EngineTelemetry;

/// Runs the product search with the engine `opts.threads` selects:
/// `None` → sequential nested DFS (CVWY), `Some(n)` → parallel
/// reachability + SCC lasso extraction with `n` workers (`Some(0)` →
/// all available cores). `limits` carries the run's state budget,
/// deadline, cancel token and (test-only) fault hook; `tel` carries the
/// run's progress reporter into the engine's hot loop — pass
/// [`EngineTelemetry::silent`] when no one is listening.
pub fn search_product(
    system: &ProductSystem<'_>,
    opts: &VerifyOptions,
    limits: &SearchLimits,
    tel: &EngineTelemetry<'_>,
) -> LimitedResult<PState> {
    match opts.threads {
        None => find_accepting_lasso_limits_with(system, limits, tel),
        Some(n) => find_accepting_lasso_limits_parallel_with(system, limits, n, tel),
    }
}
