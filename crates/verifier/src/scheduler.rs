//! The valuation-level shard scheduler (DESIGN.md §3.13).
//!
//! The universal closure of an LTL-FO property spawns one *independent*
//! product search per canonical valuation, which makes the outer loop the
//! embarrassingly-parallel axis of the decision procedure. This module
//! dispatches those searches across a bounded pool of outer shards
//! ([`VerifyOptions::valuation_threads`]) while preserving the sequential
//! loop's observable behaviour:
//!
//! * **Deterministic winner rule.** The run's verdict comes from the
//!   lowest-index valuation whose search did not complete with `Holds`.
//!   A shard that finishes with a violation (or a graceful stop) cancels
//!   only shards working on *higher* indices; lower indices always run to
//!   completion first. Since each per-valuation search is independent and
//!   deterministic (with the sequential inner engine), the winning index —
//!   and hence the verdict, the counterexample, and the redacted run
//!   report — is byte-identical across shard counts and schedules.
//! * **Grounded-NBA cache.** Canonical valuations ground the negated body
//!   to propositional formulas that are equal whenever two valuations
//!   induce the same variable-equality pattern, so [`NbaCache`] keys the
//!   translation on the grounded [`Ltl`] itself and `ltl_to_nba` runs once
//!   per formula *shape* instead of once per valuation.
//! * **Multi-shard checkpoints.** A graceful stop leaves several shards
//!   mid-search; the scheduler surfaces every in-flight
//!   [`EngineCheckpoint`] as a *leg* so `Verifier::resume` can drain all
//!   of them plus the untouched valuation tail to the unfaulted verdict.
//!
//! Three execution modes share one classification pass:
//!
//! * **inline** (`shards <= 1`) — the plain ordered loop, byte-identical
//!   to the pre-scheduler verifier;
//! * **threaded** (`shards > 1`, production) — a `std::thread::scope`
//!   worker pool claiming valuation indices in order, with per-task child
//!   [`CancelToken`]s for the first-violation cancel;
//! * **cooperative** (`shards > 1` under a fault hook or virtual clock) —
//!   a single-threaded round-robin over shard slots that parks each task
//!   every [`QUANTUM_STATES`] visited states via a synthetic state-budget
//!   stop. The deterministic simulator's virtual-clock deadlines and
//!   exact-ordinal fault plans stay a pure function of the schedule, yet
//!   a global stop still leaves multiple parked legs — so the crash/resume
//!   swarm exercises genuine multi-shard checkpoints.
//!
//! [`VerifyOptions::valuation_threads`]: crate::verify::VerifyOptions::valuation_threads

use crate::counterexample::Counterexample;
use crate::product::PState;
use crate::verify::VerifyOptions;
use ddws_automata::{ltl_to_nba, EngineCheckpoint, Ltl, Nba, SearchLimits};
use ddws_logic::VarId;
use ddws_relational::Value;
use ddws_telemetry::{AbortReason, CancelToken, SearchStats};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Visited-state quantum between cooperative parks. Matches the engines'
/// ~1024-iteration progress stride, so deadline checks happen at the same
/// granularity whether a task runs one quantum or one slice.
pub(crate) const QUANTUM_STATES: u64 = 1024;

/// The cancellation reason recorded when a shard is stopped because a
/// lower-index valuation already decided the run.
pub(crate) const SUPERSEDED: &str = "superseded by a lower-index shard verdict";

/// Resolves [`VerifyOptions::valuation_threads`] to a concrete outer shard
/// count: `None` → 1 (the classic sequential loop), `Some(0)` → all
/// available cores, `Some(n)` → `n`.
pub(crate) fn effective_shards(opts: &VerifyOptions) -> usize {
    match opts.valuation_threads {
        None => 1,
        Some(0) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(n) => n.max(1),
    }
}

/// Splits the two-level thread budget: with `shards` outer workers, each
/// inner product search gets `opts.threads / shards` workers (at least
/// one), keeping the total at the user's budget. Sequential inner engines
/// (`opts.threads: None`) stay sequential — that is the deterministic
/// configuration the differential suite pins.
pub(crate) fn inner_threads(opts: &VerifyOptions, shards: usize) -> Option<usize> {
    if shards <= 1 {
        return opts.threads;
    }
    match opts.threads {
        None => None,
        Some(t) => {
            let total = if t == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            } else {
                t
            };
            Some((total / shards).max(1))
        }
    }
}

/// Whether this run must use the cooperative (single-threaded,
/// deterministic) scheduler: exactly the test-only configurations — a
/// fault hook injecting panics/cancellations at exact expansion ordinals,
/// or a virtual clock driving deadlines — where real-thread interleaving
/// would make stop points schedule-dependent.
pub(crate) fn deterministic_mode(opts: &VerifyOptions) -> bool {
    opts.fault_hook.is_some() || opts.clock.is_some()
}

/// A shared grounded-LTL → NBA translation cache for one run.
///
/// Lookups key on the grounded propositional [`Ltl`] itself: grounding
/// assigns atom ids in traversal order and dedupes by grounded-FO
/// equality, so two valuations with the same variable-equality pattern
/// produce *equal* formulas referring to identically-numbered atoms.
/// Translation happens under the map lock, so concurrent shards racing on
/// one shape block until the first finishes — the miss count therefore
/// equals the number of distinct shapes, independent of schedule.
pub(crate) struct NbaCache {
    map: Mutex<HashMap<Ltl, std::sync::Arc<Nba>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    ns: AtomicU64,
}

impl NbaCache {
    pub(crate) fn new() -> NbaCache {
        NbaCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            ns: AtomicU64::new(0),
        }
    }

    /// The NBA for a grounded formula, translating on first sight.
    pub(crate) fn translate(&self, ltl: &Ltl) -> std::sync::Arc<Nba> {
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(nba) = map.get(ltl) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return std::sync::Arc::clone(nba);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let nba = std::sync::Arc::new(ltl_to_nba(ltl));
        map.insert(ltl.clone(), std::sync::Arc::clone(&nba));
        nba
    }

    /// Accumulates ground+translate wall time from one shard. Shards add
    /// their spans atomically and the run adds the total to its NBA phase
    /// timer at join — the shard-safe replacement for the old
    /// `meta.nba_ns +=` on the sequential loop.
    pub(crate) fn add_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// One dispatched task: a canonical valuation plus an optional engine
/// checkpoint to resume from (populated when `Verifier::resume` feeds a
/// frozen leg back to its originating engine).
pub(crate) type ValuationTask = (HashMap<VarId, Value>, Option<EngineCheckpoint<PState>>);

/// How one valuation's product search ended.
// The checkpoint-carrying variant dwarfs `Holds`, but task outputs live
// in per-batch vectors bounded by the valuation count and are consumed
// immediately by `classify` — indirection would cost more than it saves.
#[allow(clippy::large_enum_variant)]
pub(crate) enum TaskVerdict {
    /// The search exhausted the product with no accepting lasso.
    Holds,
    /// An accepting lasso was found and materialized.
    Violated {
        cex: Box<Counterexample>,
        /// Counterexample construction time, merged into the run's
        /// `counterexample_ns` phase only if this task wins.
        cex_ns: u64,
    },
    /// The search stopped gracefully (or panicked: `checkpoint: None`).
    Stopped {
        reason: AbortReason,
        checkpoint: Option<EngineCheckpoint<PState>>,
    },
}

/// One completed (or stopped) task: its verdict plus the engine's
/// cumulative statistics for this valuation (both legs after a resume —
/// the engines re-report cumulatively).
pub(crate) struct TaskOutput {
    pub(crate) stats: SearchStats,
    pub(crate) verdict: TaskVerdict,
}

/// The classified result of one scheduler run over a batch of valuations.
// `Stopped` carries two stats blocks plus the legs; exactly one
// `ShardOutcome` exists per run, so the size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
pub(crate) enum ShardOutcome {
    /// Every valuation's search completed with `Holds`.
    AllHold {
        /// Sum of all per-valuation statistics.
        stats: SearchStats,
        /// Valuations started per shard slot.
        per_shard: Vec<u64>,
    },
    /// The winning (lowest-index non-`Holds`) valuation is violated.
    Violated {
        /// Index of the winning valuation within the dispatched batch.
        index: usize,
        cex: Box<Counterexample>,
        cex_ns: u64,
        /// Statistics of the completed prefix plus the winner — exactly
        /// what the sequential loop would have accumulated, independent
        /// of how much superseded work other shards did.
        stats: SearchStats,
        per_shard: Vec<u64>,
    },
    /// The winning valuation stopped without a verdict.
    Stopped {
        /// Index of the winning valuation within the dispatched batch.
        index: usize,
        reason: AbortReason,
        /// Prefix + the winner's partial statistics (the abort report's
        /// counters; deterministic for budget stops).
        stats: SearchStats,
        /// Prefix + completed-`Holds` work *above* the winner — the
        /// checkpoint's base, so a resume neither redoes nor double-counts
        /// finished valuations.
        stats_prior: SearchStats,
        /// Batch indices not fully verified, ascending, the winner first.
        remaining: Vec<usize>,
        /// In-flight engine checkpoints, as (position within `remaining`,
        /// frozen frontier) pairs; the winner's leg (when it captured one)
        /// is first.
        legs: Vec<(usize, EngineCheckpoint<PState>)>,
        per_shard: Vec<u64>,
    },
}

/// Runs `runner` over the batched valuations with `shards` outer workers
/// and classifies the results under the deterministic winner rule.
///
/// `runner` maps one valuation (plus an optional engine checkpoint to
/// resume from, and the limits to honour) to a [`TaskOutput`]; it is
/// called concurrently from scope threads in threaded mode and must not
/// assume any ordering beyond "claimed in index order". Panics that
/// escape it are caught and classified as `WorkerPanicked` stops.
pub(crate) fn run_valuation_shards<F>(
    tasks: Vec<ValuationTask>,
    shards: usize,
    limits: &SearchLimits,
    deterministic: bool,
    runner: F,
) -> ShardOutcome
where
    F: Fn(&HashMap<VarId, Value>, Option<EngineCheckpoint<PState>>, &SearchLimits) -> TaskOutput
        + Sync,
{
    if shards <= 1 || tasks.len() <= 1 {
        run_inline(tasks, limits, &runner)
    } else if deterministic {
        run_cooperative(tasks, shards, limits, &runner)
    } else {
        run_threaded(tasks, shards, limits, &runner)
    }
}

/// Wraps one runner call in panic isolation. The engines already isolate
/// panics inside their workers; this net catches panics in grounding,
/// product construction, or counterexample materialization.
fn run_guarded<F>(
    runner: &F,
    shard: usize,
    valuation: &HashMap<VarId, Value>,
    resume: Option<EngineCheckpoint<PState>>,
    limits: &SearchLimits,
) -> TaskOutput
where
    F: Fn(&HashMap<VarId, Value>, Option<EngineCheckpoint<PState>>, &SearchLimits) -> TaskOutput
        + Sync,
{
    match catch_unwind(AssertUnwindSafe(|| runner(valuation, resume, limits))) {
        Ok(out) => out,
        Err(payload) => TaskOutput {
            stats: SearchStats::default(),
            verdict: TaskVerdict::Stopped {
                reason: AbortReason::WorkerPanicked {
                    worker: shard,
                    payload: payload_string(payload.as_ref()),
                },
                checkpoint: None,
            },
        },
    }
}

/// Best-effort panic payload stringification (the common `&str` and
/// `String` payloads; anything else is opaque).
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// The classic ordered loop: one shard, early exit at the first
/// non-`Holds` result. Byte-identical to the pre-scheduler verifier.
fn run_inline<F>(tasks: Vec<ValuationTask>, limits: &SearchLimits, runner: &F) -> ShardOutcome
where
    F: Fn(&HashMap<VarId, Value>, Option<EngineCheckpoint<PState>>, &SearchLimits) -> TaskOutput
        + Sync,
{
    let mut results: Vec<Option<TaskOutput>> = tasks.iter().map(|_| None).collect();
    let mut started = 0u64;
    for (i, (valuation, resume)) in tasks.into_iter().enumerate() {
        started += 1;
        let out = run_guarded(runner, 0, &valuation, resume, limits);
        let done = !matches!(out.verdict, TaskVerdict::Holds);
        results[i] = Some(out);
        if done {
            break;
        }
    }
    classify(results, vec![started])
}

/// The production worker pool: `shards` scope threads claim valuation
/// indices in order; a non-`Holds` result cancels every *higher*-index
/// task through its child token and lower indices run to completion, so
/// the final winner is schedule-independent.
fn run_threaded<F>(
    tasks: Vec<ValuationTask>,
    shards: usize,
    limits: &SearchLimits,
    runner: &F,
) -> ShardOutcome
where
    F: Fn(&HashMap<VarId, Value>, Option<EngineCheckpoint<PState>>, &SearchLimits) -> TaskOutput
        + Sync,
{
    // The resume slot goes behind a mutex so any claiming thread can
    // take it.
    type Claimed = (
        HashMap<VarId, Value>,
        Mutex<Option<EngineCheckpoint<PState>>>,
    );
    let n = tasks.len();
    let tasks: Vec<Claimed> = tasks.into_iter().map(|(v, r)| (v, Mutex::new(r))).collect();
    let results: Vec<Mutex<Option<TaskOutput>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let per_shard: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
    let next = AtomicUsize::new(0);
    // Lowest index with a completed non-`Holds` result so far.
    let winner = AtomicUsize::new(usize::MAX);
    // (index, child token) of every task currently running.
    let active: Mutex<Vec<(usize, CancelToken)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for shard in 0..shards {
            let tasks = &tasks;
            let results = &results;
            let per_shard = &per_shard;
            let next = &next;
            let winner = &winner;
            let active = &active;
            scope.spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::SeqCst);
                // Everything at or past a decided winner is superseded
                // (the winner index only ever decreases).
                if idx >= n || idx > winner.load(Ordering::SeqCst) {
                    break;
                }
                let token = match &limits.cancel {
                    Some(parent) => parent.child(),
                    None => CancelToken::new(),
                };
                active.lock().unwrap().push((idx, token.clone()));
                // A lower-index winner may have landed while registering;
                // self-cancel so the engine stops on its first iteration.
                if idx > winner.load(Ordering::SeqCst) {
                    token.cancel(SUPERSEDED);
                }
                let task_limits = SearchLimits {
                    cancel: Some(token),
                    ..limits.clone()
                };
                let resume = tasks[idx].1.lock().unwrap().take();
                per_shard[shard].fetch_add(1, Ordering::Relaxed);
                let out = run_guarded(runner, shard, &tasks[idx].0, resume, &task_limits);
                let non_holds = !matches!(out.verdict, TaskVerdict::Holds);
                *results[idx].lock().unwrap() = Some(out);
                if non_holds {
                    let mut cur = winner.load(Ordering::SeqCst);
                    while idx < cur {
                        match winner.compare_exchange(cur, idx, Ordering::SeqCst, Ordering::SeqCst)
                        {
                            Ok(_) => break,
                            Err(seen) => cur = seen,
                        }
                    }
                    let bound = winner.load(Ordering::SeqCst);
                    for (i, t) in active.lock().unwrap().iter() {
                        if *i > bound {
                            t.cancel(SUPERSEDED);
                        }
                    }
                }
                active.lock().unwrap().retain(|(i, _)| *i != idx);
            });
        }
    });

    classify(
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
        per_shard.into_iter().map(|a| a.into_inner()).collect(),
    )
}

/// One cooperative shard slot: a claimed task parked between quanta.
struct CoopSlot {
    idx: usize,
    shard: usize,
    /// The frozen frontier and cumulative stats at the last park. Always
    /// `Some` while the slot sits in the round-robin queue (a task is
    /// claimed and immediately run, so a queued slot has run at least one
    /// quantum).
    parked: Option<(EngineCheckpoint<PState>, SearchStats)>,
}

/// The deterministic scheduler: claims tasks in index order into `shards`
/// slots and round-robins one [`QUANTUM_STATES`]-state quantum at a time
/// via synthetic state-budget parks, all on the caller's thread. Under a
/// virtual clock or an exact-ordinal fault plan every stop point is a
/// pure function of the schedule, and a global stop (cancel, deadline)
/// leaves each in-flight slot as a checkpoint leg.
fn run_cooperative<F>(
    tasks: Vec<ValuationTask>,
    shards: usize,
    limits: &SearchLimits,
    runner: &F,
) -> ShardOutcome
where
    F: Fn(&HashMap<VarId, Value>, Option<EngineCheckpoint<PState>>, &SearchLimits) -> TaskOutput
        + Sync,
{
    let n = tasks.len();
    let mut tasks = tasks;
    let real_cap = limits.max_states;
    let mut results: Vec<Option<TaskOutput>> = (0..n).map(|_| None).collect();
    let mut per_shard = vec![0u64; shards];
    // Free slot ids, lowest first (claim order is deterministic).
    let mut free: Vec<usize> = (0..shards).rev().collect();
    let mut queue: VecDeque<CoopSlot> = VecDeque::new();
    let mut next = 0usize;
    let mut winner_bound = usize::MAX;

    loop {
        // No between-quanta stop check is needed: the engines observe
        // cancellation every iteration and the deadline from iteration 0,
        // so once either is raised, every subsequent quantum — parked or
        // fresh — immediately completes with that stop and a frontier
        // checkpoint, and the winner rule picks the lowest index.

        // Claim-and-run-immediately beats round-robin, so a slot in the
        // queue always holds a parked checkpoint.
        let (mut slot, resume) = if next < n && next < winner_bound && !free.is_empty() {
            let shard = free.pop().expect("checked non-empty");
            let idx = next;
            next += 1;
            per_shard[shard] += 1;
            let resume = tasks[idx].1.take();
            (
                CoopSlot {
                    idx,
                    shard,
                    parked: None,
                },
                resume,
            )
        } else if let Some(mut slot) = queue.pop_front() {
            let (cp, _) = slot.parked.take().expect("queued slots are parked");
            (slot, Some(cp))
        } else {
            break;
        };

        let visited = resume.as_ref().map_or(0, |cp| cp.states_visited());
        let quantum_cap = visited + QUANTUM_STATES;
        let cap = real_cap.map_or(quantum_cap, |r| quantum_cap.min(r));
        let quantum_limits = SearchLimits {
            max_states: Some(cap),
            ..limits.clone()
        };
        let out = run_guarded(
            runner,
            slot.shard,
            &tasks[slot.idx].0,
            resume,
            &quantum_limits,
        );
        match out.verdict {
            // A budget stop at the *synthetic* cap is a park, not a
            // verdict; a stop at the real cap falls through as genuine.
            TaskVerdict::Stopped {
                reason: AbortReason::StateBudget { max_states },
                checkpoint: Some(cp),
            } if Some(max_states) != real_cap => {
                slot.parked = Some((cp, out.stats));
                queue.push_back(slot);
            }
            verdict => {
                let non_holds = !matches!(verdict, TaskVerdict::Holds);
                results[slot.idx] = Some(TaskOutput {
                    stats: out.stats,
                    verdict,
                });
                free.push(slot.shard);
                if non_holds && slot.idx < winner_bound {
                    winner_bound = slot.idx;
                    // Supersede every queued slot above the bound; their
                    // parked frontiers become resumable legs.
                    let mut kept = VecDeque::new();
                    while let Some(s) = queue.pop_front() {
                        if s.idx > winner_bound {
                            let (cp, stats) = s.parked.expect("queued slots are parked");
                            results[s.idx] = Some(TaskOutput {
                                stats,
                                verdict: TaskVerdict::Stopped {
                                    reason: AbortReason::Cancelled {
                                        reason: SUPERSEDED.to_string(),
                                    },
                                    checkpoint: Some(cp),
                                },
                            });
                            free.push(s.shard);
                        } else {
                            kept.push_back(s);
                        }
                    }
                    queue = kept;
                }
            }
        }
    }

    classify(results, per_shard)
}

/// One deterministic pass from per-task results to the run outcome under
/// the winner rule. See the invariants in the module docs: every task
/// below the winner completed with `Holds`; results above the winner are
/// either completed `Holds` (folded into the checkpoint base), stopped
/// with a checkpoint (a resumable leg), or discarded back into the
/// remaining tail (never-started, superseded violations, stops without a
/// frontier).
fn classify(mut results: Vec<Option<TaskOutput>>, per_shard: Vec<u64>) -> ShardOutcome {
    let winner = results.iter().position(|r| {
        matches!(
            r,
            Some(TaskOutput {
                verdict: TaskVerdict::Violated { .. } | TaskVerdict::Stopped { .. },
                ..
            })
        )
    });
    let Some(w) = winner else {
        let mut stats = SearchStats::default();
        for r in &results {
            let out = r.as_ref().expect("no winner means every task completed");
            debug_assert!(matches!(out.verdict, TaskVerdict::Holds));
            stats.absorb(&out.stats);
        }
        return ShardOutcome::AllHold { stats, per_shard };
    };

    // Everything below the winner ran to completion with `Holds` — the
    // scheduler never cancels a lower index than a decided result.
    let mut prefix = SearchStats::default();
    for r in results.iter().take(w) {
        let out = r.as_ref().expect("tasks below the winner completed");
        debug_assert!(matches!(out.verdict, TaskVerdict::Holds));
        prefix.absorb(&out.stats);
    }
    let out = results[w].take().expect("winner has a result");
    match out.verdict {
        TaskVerdict::Holds => unreachable!("winner is a non-Holds result"),
        TaskVerdict::Violated { cex, cex_ns } => {
            let mut stats = prefix;
            stats.absorb(&out.stats);
            ShardOutcome::Violated {
                index: w,
                cex,
                cex_ns,
                stats,
                per_shard,
            }
        }
        TaskVerdict::Stopped { reason, checkpoint } => {
            let mut stats = prefix;
            stats.absorb(&out.stats);
            let mut stats_prior = prefix;
            let mut remaining = vec![w];
            let mut legs = Vec::new();
            if let Some(cp) = checkpoint {
                legs.push((0, cp));
            }
            for (i, slot) in results.iter_mut().enumerate().skip(w + 1) {
                match slot.take() {
                    Some(TaskOutput {
                        stats: s,
                        verdict: TaskVerdict::Holds,
                    }) => stats_prior.absorb(&s),
                    Some(TaskOutput {
                        verdict:
                            TaskVerdict::Stopped {
                                checkpoint: Some(cp),
                                ..
                            },
                        ..
                    }) => {
                        legs.push((remaining.len(), cp));
                        remaining.push(i);
                    }
                    // Superseded violations and checkpoint-less stops are
                    // discarded (reporting them would leak the schedule);
                    // the valuation re-runs from scratch on resume.
                    Some(_) | None => remaining.push(i),
                }
            }
            ShardOutcome::Stopped {
                index: w,
                reason,
                stats,
                stats_prior,
                remaining,
                legs,
                per_shard,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holds(states: u64) -> TaskOutput {
        TaskOutput {
            stats: SearchStats {
                states_visited: states,
                ..SearchStats::default()
            },
            verdict: TaskVerdict::Holds,
        }
    }

    fn stopped(states: u64, cap: u64) -> TaskOutput {
        TaskOutput {
            stats: SearchStats {
                states_visited: states,
                truncated: true,
                ..SearchStats::default()
            },
            verdict: TaskVerdict::Stopped {
                reason: AbortReason::StateBudget { max_states: cap },
                checkpoint: None,
            },
        }
    }

    #[test]
    fn classify_all_hold_sums_stats() {
        let out = classify(vec![Some(holds(3)), Some(holds(4))], vec![2]);
        match out {
            ShardOutcome::AllHold { stats, per_shard } => {
                assert_eq!(stats.states_visited, 7);
                assert_eq!(per_shard, vec![2]);
            }
            _ => panic!("expected AllHold"),
        }
    }

    #[test]
    fn classify_stop_splits_prefix_and_prior() {
        // Tasks: 0 holds, 1 stopped (winner), 2 holds-above, 3 untouched.
        let out = classify(
            vec![
                Some(holds(10)),
                Some(stopped(5, 100)),
                Some(holds(20)),
                None,
            ],
            vec![2, 2],
        );
        match out {
            ShardOutcome::Stopped {
                index,
                stats,
                stats_prior,
                remaining,
                legs,
                ..
            } => {
                assert_eq!(index, 1);
                // Abort-report stats: prefix + winner partial only.
                assert_eq!(stats.states_visited, 15);
                assert!(stats.truncated);
                // Checkpoint base: prefix + completed work above the
                // winner, so resume does not redo task 2.
                assert_eq!(stats_prior.states_visited, 30);
                assert!(!stats_prior.truncated);
                assert_eq!(remaining, vec![1, 3]);
                // The winner carried no engine checkpoint here.
                assert!(legs.is_empty());
            }
            _ => panic!("expected Stopped"),
        }
    }

    #[test]
    fn effective_shards_resolves_zero_to_cores() {
        let mut opts = VerifyOptions::default();
        assert_eq!(effective_shards(&opts), 1);
        opts.valuation_threads = Some(4);
        assert_eq!(effective_shards(&opts), 4);
        opts.valuation_threads = Some(0);
        assert!(effective_shards(&opts) >= 1);
    }

    #[test]
    fn inner_threads_split_the_budget() {
        let mut opts = VerifyOptions {
            valuation_threads: Some(4),
            ..VerifyOptions::default()
        };
        assert_eq!(inner_threads(&opts, 4), None, "sequential stays sequential");
        opts.threads = Some(8);
        assert_eq!(inner_threads(&opts, 4), Some(2));
        opts.threads = Some(2);
        assert_eq!(inner_threads(&opts, 4), Some(1), "at least one worker");
        assert_eq!(
            inner_threads(&opts, 1),
            Some(2),
            "one shard keeps the budget"
        );
    }
}
