//! The lazy database oracle.
//!
//! Verification quantifies existentially over all databases with active
//! domain inside the verification domain. Instead of enumerating them, the
//! search keeps, per state, a *partial* database — a bitset over the finite
//! universe of candidate facts — and decides a fact the first time rule or
//! property evaluation touches it, forking the search on true/false. Facts
//! only accumulate along a path, so (i) the database stays consistent
//! within a run, and (ii) fork edges can never lie on a cycle, which keeps
//! Büchi acceptance sound.

use ddws_model::Database;
use ddws_relational::{Instance, RelId, Tuple, Value, Vocabulary};
use std::cell::Cell;
use std::collections::HashMap;

/// The finite universe of database facts over the verification domain.
#[derive(Clone, Debug, Default)]
pub struct FactUniverse {
    facts: Vec<(RelId, Tuple)>,
    index: HashMap<(RelId, Tuple), usize>,
}

impl FactUniverse {
    /// Builds the universe: every tuple over `domain` for every relation in
    /// `db_rels`.
    pub fn new(voc: &Vocabulary, db_rels: &[RelId], domain: &[Value]) -> Self {
        let mut u = FactUniverse::default();
        for &rel in db_rels {
            let arity = voc.arity(rel);
            let mut tuple = vec![0usize; arity];
            loop {
                let t: Tuple = tuple.iter().map(|&i| domain[i]).collect();
                let idx = u.facts.len();
                u.index.insert((rel, t.clone()), idx);
                u.facts.push((rel, t));
                // Odometer over domain indices.
                let mut i = 0;
                loop {
                    if i == arity {
                        break;
                    }
                    tuple[i] += 1;
                    if tuple[i] < domain.len() {
                        break;
                    }
                    tuple[i] = 0;
                    i += 1;
                }
                if arity == 0 || i == arity {
                    break;
                }
            }
        }
        u
    }

    /// Number of candidate facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the universe is empty (fixed-database verification).
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Index of a fact, if it belongs to the universe.
    pub fn fact_index(&self, rel: RelId, tuple: &[Value]) -> Option<usize> {
        // Avoid the Tuple allocation on the hot path when the universe is
        // empty (fixed database).
        if self.facts.is_empty() {
            return None;
        }
        self.index.get(&(rel, Tuple::from(tuple))).copied()
    }

    /// The fact at `idx`.
    pub fn fact(&self, idx: usize) -> &(RelId, Tuple) {
        &self.facts[idx]
    }
}

/// A partial database: which facts are decided, and their values.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Oracle {
    decided: Box<[u64]>,
    values: Box<[u64]>,
}

impl Oracle {
    /// The fully undecided oracle for a universe of `n` facts.
    pub fn undecided(n: usize) -> Self {
        let words = n.div_ceil(64);
        Oracle {
            decided: vec![0; words].into_boxed_slice(),
            values: vec![0; words].into_boxed_slice(),
        }
    }

    /// Whether fact `i` is decided.
    pub fn is_decided(&self, i: usize) -> bool {
        self.decided[i / 64] >> (i % 64) & 1 == 1
    }

    /// The value of fact `i` (meaningful only when decided).
    pub fn value(&self, i: usize) -> bool {
        self.values[i / 64] >> (i % 64) & 1 == 1
    }

    /// A copy of this oracle with fact `i` decided to `v`.
    pub fn with_decided(&self, i: usize, v: bool) -> Oracle {
        let mut o = self.clone();
        o.decided[i / 64] |= 1 << (i % 64);
        if v {
            o.values[i / 64] |= 1 << (i % 64);
        }
        o
    }

    /// Number of decided facts.
    pub fn decided_count(&self) -> u32 {
        self.decided.iter().map(|w| w.count_ones()).sum()
    }

    /// Materializes the decided-true facts as a database [`Instance`]
    /// (undecided facts default to false — any run consistent with the
    /// oracle is a run over this database).
    pub fn materialize(&self, voc: &Vocabulary, universe: &FactUniverse) -> Instance {
        let mut inst = Instance::empty(voc);
        for i in 0..universe.len() {
            if self.is_decided(i) && self.value(i) {
                let (rel, tuple) = universe.fact(i);
                inst.relation_mut(*rel).insert(tuple.clone());
            }
        }
        inst
    }
}

/// A [`Database`] view that answers decided facts from the oracle, fixed
/// facts from the base instance, and *records* the first undecided fact it
/// is asked about (returning `false` for it — the caller discards the
/// result and forks on the recorded fact).
pub struct RecordingDb<'a> {
    /// Facts outside the universe (fixed part of the database).
    pub base: &'a Instance,
    /// The candidate-fact universe.
    pub universe: &'a FactUniverse,
    /// The current partial database.
    pub oracle: &'a Oracle,
    /// First undecided fact touched during evaluation, if any.
    pub hit: Cell<Option<usize>>,
}

impl<'a> RecordingDb<'a> {
    /// Builds the view with no recorded hit.
    pub fn new(base: &'a Instance, universe: &'a FactUniverse, oracle: &'a Oracle) -> Self {
        RecordingDb {
            base,
            universe,
            oracle,
            hit: Cell::new(None),
        }
    }

    /// The recorded undecided fact, if evaluation touched one.
    pub fn undecided_hit(&self) -> Option<usize> {
        self.hit.get()
    }
}

impl Database for RecordingDb<'_> {
    fn db_contains(&self, rel: RelId, tuple: &[Value]) -> bool {
        match self.universe.fact_index(rel, tuple) {
            Some(i) => {
                if self.oracle.is_decided(i) {
                    self.oracle.value(i)
                } else {
                    if self.hit.get().is_none() {
                        self.hit.set(Some(i));
                    }
                    false
                }
            }
            None => self.base.db_contains(rel, tuple),
        }
    }

    fn db_scan(&self, rel: RelId) -> Option<Vec<Vec<Value>>> {
        if self.universe.is_empty() {
            // Fixed-database verification: the base instance is complete.
            self.base.db_scan(rel)
        } else {
            // Lazily decided facts cannot be enumerated.
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Vocabulary, FactUniverse) {
        let mut voc = Vocabulary::new();
        let r = voc.declare("r", 2).unwrap();
        let p = voc.declare("p", 0).unwrap();
        let universe = FactUniverse::new(&voc, &[r, p], &[Value(0), Value(1)]);
        (voc, universe)
    }

    #[test]
    fn universe_enumerates_all_tuples() {
        let (_, u) = setup();
        // r: 2^2 = 4 facts, p: 1 fact.
        assert_eq!(u.len(), 5);
        assert!(u.fact_index(RelId(0), &[Value(1), Value(0)]).is_some());
        assert!(u.fact_index(RelId(1), &[]).is_some());
        assert!(u.fact_index(RelId(0), &[Value(2), Value(0)]).is_none());
    }

    #[test]
    fn oracle_decide_and_materialize() {
        let (voc, u) = setup();
        let o = Oracle::undecided(u.len());
        assert_eq!(o.decided_count(), 0);
        let i = u.fact_index(RelId(0), &[Value(0), Value(1)]).unwrap();
        let o2 = o.with_decided(i, true);
        assert!(o2.is_decided(i));
        assert!(o2.value(i));
        assert_eq!(o2.decided_count(), 1);
        let o3 = o2.with_decided(u.fact_index(RelId(1), &[]).unwrap(), false);
        let inst = o3.materialize(&voc, &u);
        assert_eq!(inst.relation(RelId(0)).len(), 1);
        assert!(!inst.holds(RelId(1)));
    }

    #[test]
    fn recording_db_reports_first_undecided() {
        let (voc, u) = setup();
        let base = Instance::empty(&voc);
        let i = u.fact_index(RelId(0), &[Value(0), Value(0)]).unwrap();
        let oracle = Oracle::undecided(u.len()).with_decided(i, true);
        let db = RecordingDb::new(&base, &u, &oracle);
        // Decided fact: answered, no hit.
        assert!(db.db_contains(RelId(0), &[Value(0), Value(0)]));
        assert!(db.undecided_hit().is_none());
        // Undecided fact: recorded, answered false.
        assert!(!db.db_contains(RelId(0), &[Value(1), Value(1)]));
        let hit = db.undecided_hit().unwrap();
        assert_eq!(u.fact(hit).0, RelId(0));
        // Only the first hit is kept.
        assert!(!db.db_contains(RelId(1), &[]));
        assert_eq!(db.undecided_hit(), Some(hit));
    }

    #[test]
    fn oracle_equality_is_structural() {
        let (_, u) = setup();
        let a = Oracle::undecided(u.len())
            .with_decided(0, true)
            .with_decided(1, false);
        let b = Oracle::undecided(u.len())
            .with_decided(1, false)
            .with_decided(0, true);
        assert_eq!(a, b);
    }
}
