//! Counterexample runs.

use ddws_logic::VarId;
use ddws_model::{Composition, Config, Mover};
use ddws_relational::{Instance, Value};
use std::fmt;

/// One snapshot of a counterexample run, together with the mover labelling
/// its outgoing transition (the paper's `moveW`).
#[derive(Clone, Debug)]
pub struct RunStep {
    /// The composition configuration.
    pub config: Config,
    /// The peer (or environment) moving next.
    pub mover: Mover,
}

/// A violating run: the lasso `prefix · cycle^ω` over `database`, refuting
/// the property instantiated at `valuation`.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The database witnessing the violation (decided-true oracle facts
    /// plus the fixed base; undecided facts are false).
    pub database: Instance,
    /// The instantiation of the property's universal closure.
    pub valuation: Vec<(VarId, Value)>,
    /// Names of relations whose tracking was frozen during the check
    /// (unobserved by the property): they display as empty in the snapshots
    /// below even where a fully tracked run would populate them.
    pub frozen_rels: Vec<String>,
    /// Snapshots from the initial configuration to the cycle entry.
    pub prefix: Vec<RunStep>,
    /// The repeating suffix.
    pub cycle: Vec<RunStep>,
}

impl Counterexample {
    /// Renders the run with external names.
    pub fn display<'a>(&'a self, comp: &'a Composition) -> impl fmt::Display + 'a {
        DisplayCex { cex: self, comp }
    }
}

struct DisplayCex<'a> {
    cex: &'a Counterexample,
    comp: &'a Composition,
}

impl fmt::Display for DisplayCex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let comp = self.comp;
        let symbols = &comp.symbols;
        writeln!(f, "counterexample run")?;
        if !self.cex.valuation.is_empty() {
            write!(f, "  universal variables: ")?;
            for (i, (v, d)) in self.cex.valuation.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{} = {}", comp.vars.name(*v), symbols.name(*d))?;
            }
            writeln!(f)?;
        }
        if !self.cex.frozen_rels.is_empty() {
            writeln!(
                f,
                "  (unobserved relations frozen during this check and shown empty: {})",
                self.cex.frozen_rels.join(", ")
            )?;
        }
        writeln!(f, "  database:")?;
        for line in self
            .cex
            .database
            .display(&comp.voc, symbols)
            .to_string()
            .lines()
        {
            writeln!(f, "    {line}")?;
        }
        let mover_name = |m: Mover| -> String {
            match m {
                Mover::Peer(p) => comp.peers[p.index()].name.clone(),
                Mover::Environment => "ENV".to_owned(),
            }
        };
        for (label, steps) in [
            ("prefix", &self.cex.prefix),
            ("cycle (repeats forever)", &self.cex.cycle),
        ] {
            writeln!(f, "  {label}:")?;
            for (i, step) in steps.iter().enumerate() {
                writeln!(f, "    step {i} (next mover: {})", mover_name(step.mover))?;
                for line in step.config.display(comp, symbols).to_string().lines() {
                    writeln!(f, "      {line}")?;
                }
            }
        }
        Ok(())
    }
}
