//! Shared harness for the differential swarm (tests/swarm.rs), its pinned
//! regression seeds (tests/regressions.rs), and the telemetry invariant
//! suite (tests/telemetry_invariants.rs).

// Each including test binary uses a subset of these helpers.
#![allow(dead_code)]

use ddws_model::{CompiledRules, Config, EvalCtx, RuleCache};
use ddws_testkit::rng::XorShift;
use ddws_testkit::{compgen, faults};
use ddws_verifier::{
    validate_run_report, BufferReporter, DatabaseMode, Outcome, Reduction, ReporterHandle,
    RuleEval, Verifier, VerifyError, VerifyOptions,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// State budget for swarm cases: generous for the tiny generated
/// compositions, so budget exhaustion stays the exception.
pub const SWARM_BUDGET: u64 = 30_000;

/// Runs `check` on a freshly drawn case; if it panics, delta-debugs the
/// case down to a 1-minimal spec that still fails, prints it, and
/// re-raises the original panic (so `gen::cases` still reports the
/// sub-seed to pin in tests/regressions.rs).
pub fn shrink_on_failure(rng: &mut XorShift, check: fn(&compgen::Case)) {
    let spec = compgen::spec(rng);
    let case = spec.build().expect("generated composition is well-formed");
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&case)));
    let Err(payload) = outcome else { return };
    // Shrink quietly: the loop re-runs the failing check once per
    // candidate cut, and every *accepted* cut would otherwise dump one
    // more panic message and backtrace into the output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let min = compgen::minimize(&spec, |c| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(c))).is_err()
    });
    std::panic::set_hook(prev);
    eprintln!(
        "swarm: minimized the failing case from {} to {} structural elements:\n{}",
        spec.size(),
        min.size(),
        min
    );
    std::panic::resume_unwind(payload);
}

/// Whether the case's property is violated under the sequential full
/// search — the reproduction predicate for the pinned shrinker regression.
pub fn violates_seq_full(case: &compgen::Case) -> bool {
    let mut v = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: SWARM_BUDGET,
        ..VerifyOptions::default()
    };
    matches!(
        v.check_str(&case.property, &opts),
        Ok(r) if matches!(r.outcome, Outcome::Violated(_))
    )
}

/// Draws one case and asserts that `Reduction::Ample` and
/// `Reduction::Full` agree on its verdict.
///
/// Budget outcomes are handled explicitly rather than assumed away:
///
/// * both searches exceed the budget — agreement (trivially);
/// * only the *full* search exceeds it — fine: pruning interleavings is
///   the reduction's purpose, so the ample search may fit a budget the
///   full one blows;
/// * only the *ample* search exceeds it — also tolerated: on a violated
///   case the full nested DFS can stop early at a lasso the reduced
///   graph reaches later, so neither direction is comparable;
/// * both complete — the verdicts must be equal.
///
/// Any other error (parse failure, input-boundedness rejection) is a
/// generator bug and panics.
pub fn assert_case_agrees(rng: &mut XorShift) {
    case_agrees(&compgen::case(rng));
}

/// [`assert_case_agrees`] on an already-materialized case (the form the
/// shrinker re-runs).
pub fn case_agrees(case: &compgen::Case) {
    // `None` = the search stopped on its state budget (inconclusive).
    let run = |reduction: Reduction| -> Option<bool> {
        let mut v = Verifier::new(case.composition.clone());
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(case.database.clone()),
            fresh_values: Some(1),
            max_states: SWARM_BUDGET,
            reduction,
            ..VerifyOptions::default()
        };
        let report = v.check_str(&case.property, &opts).unwrap_or_else(|e| {
            panic!(
                "generator produced an unverifiable case `{}`: {e}",
                case.property
            )
        });
        match report.outcome {
            Outcome::Holds => Some(true),
            Outcome::Violated(_) => Some(false),
            Outcome::Inconclusive(_) => None,
        }
    };
    if let (Some(f), Some(a)) = (run(Reduction::Full), run(Reduction::Ample)) {
        assert_eq!(
            f, a,
            "verdict disagreement on `{}` (full: {f}, ample: {a})",
            case.property
        );
    }
}

/// Installs a process-wide panic hook that swallows the testkit's
/// *injected* panics (fault-swarm noise) and delegates every other panic
/// to the previously installed hook. Installed once per process.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains(faults::INJECTED_PANIC) {
                prev(info);
            }
        }));
    });
}

/// The swarm options every fault-contract run starts from.
fn fault_opts(case: &compgen::Case, threads: Option<usize>, reduction: Reduction) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: SWARM_BUDGET,
        threads,
        reduction,
        ..VerifyOptions::default()
    }
}

/// Draws one case, one fault plan, and one engine/reduction point, then
/// asserts the robustness contract ([`assert_fault_contract`]). Everything
/// is derived from `rng`, so a printed sub-seed replays the full triple.
pub fn assert_fault_case(rng: &mut XorShift) {
    let case = compgen::case(rng);
    let plan = faults::FaultPlan::draw(rng, 48);
    let threads = [None, Some(1), Some(2), Some(4)][rng.below(4) as usize];
    let reduction = if rng.bool() {
        Reduction::Ample
    } else {
        Reduction::Full
    };
    assert_fault_contract(&case, &plan, threads, reduction);
}

/// The robustness contract for one armed fault (DESIGN.md §3.10):
///
/// * the run terminates (no deadlock) and never kills the process;
/// * the reporter receives **exactly one** schema-valid [`RunReport`]
///   whose merged counters stay coherent;
/// * an injected panic surfaces as `VerifyError::WorkerPanicked` carrying
///   the injected payload and the same report the reporter saw;
/// * a cancellation / deadline / budget stop is an `Ok` report with an
///   `Inconclusive` outcome labelled for its reason — never a fabricated
///   verdict;
/// * resuming a captured checkpoint *without* the fault reaches the same
///   verdict as an unfaulted baseline run (when both are conclusive).
///
/// A fault is a *trigger*, not a guarantee: a search that finishes before
/// the trigger ordinal (or before the next cancellation stride check)
/// legitimately returns its ordinary verdict, which must then agree with
/// the baseline.
pub fn assert_fault_contract(
    case: &compgen::Case,
    plan: &faults::FaultPlan,
    threads: Option<usize>,
    reduction: Reduction,
) {
    let label = format!(
        "threads={threads:?} reduction={reduction:?} plan={plan:?} `{}`",
        case.property
    );

    // Unfaulted baseline verdict (`None` when the state budget trips).
    let baseline = {
        let mut v = Verifier::new(case.composition.clone());
        let report = v
            .check_str(&case.property, &fault_opts(case, threads, reduction))
            .unwrap_or_else(|e| panic!("{label}: baseline run failed: {e}"));
        match report.outcome {
            Outcome::Holds => Some(true),
            Outcome::Violated(_) => Some(false),
            Outcome::Inconclusive(_) => None,
        }
    };

    // The armed run.
    let buf = Arc::new(BufferReporter::new());
    let armed = plan.arm();
    let mut v = Verifier::new(case.composition.clone());
    let mut opts = fault_opts(case, threads, reduction);
    opts.reporter = ReporterHandle::new(buf.clone());
    opts.fault_hook = armed.hook;
    opts.cancel_token = armed.token;
    if armed.deadline_now {
        opts.deadline = Some(Duration::ZERO);
    }
    let result = v.check_str(&case.property, &opts);

    // Exactly one schema-valid report, whatever happened.
    let reports = buf.take_reports();
    assert_eq!(
        reports.len(),
        1,
        "{label}: expected exactly one final report, got {}",
        reports.len()
    );
    let r = &reports[0];
    validate_run_report(&r.to_json_value())
        .unwrap_or_else(|e| panic!("{label}: schema violation: {e}"));
    assert_eq!(
        r.counters.rule_cache_hits + r.counters.rule_cache_misses,
        r.counters.rule_evals,
        "{label}: merged rule counters are incoherent"
    );

    match result {
        Err(VerifyError::WorkerPanicked {
            payload, report, ..
        }) => {
            assert!(
                matches!(plan, faults::FaultPlan::Panic(_)),
                "{label}: unplanned worker panic: {payload}"
            );
            assert!(
                payload.contains(faults::INJECTED_PANIC),
                "{label}: foreign panic payload: {payload}"
            );
            assert_eq!(
                &*report, r,
                "{label}: attached report differs from the emitted one"
            );
            assert_eq!(r.outcome, "worker_panicked", "{label}");
            assert!(r.counters.truncated, "{label}: stats not flagged truncated");
            let abort = r
                .abort
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: abort object missing"));
            assert!(
                !abort.resumable,
                "{label}: panic aborts must not claim resumability"
            );
        }
        Err(e) => panic!("{label}: unexpected error: {e}"),
        Ok(report) => match report.outcome {
            Outcome::Holds => {
                assert!(
                    r.abort.is_none(),
                    "{label}: conclusive run carries an abort object"
                );
                if let Some(b) = baseline {
                    assert!(b, "{label}: faulted run holds, baseline violated");
                }
            }
            Outcome::Violated(_) => {
                assert!(
                    r.abort.is_none(),
                    "{label}: conclusive run carries an abort object"
                );
                if let Some(b) = baseline {
                    assert!(!b, "{label}: faulted run violated, baseline holds");
                }
            }
            Outcome::Inconclusive(inc) => {
                assert_eq!(
                    inc.reason.label(),
                    r.outcome,
                    "{label}: report label diverges from the abort reason"
                );
                assert!(
                    r.outcome == plan.outcome_label() || r.outcome == "budget_exceeded",
                    "{label}: unexpected abort label {}",
                    r.outcome
                );
                assert!(
                    r.counters.truncated,
                    "{label}: abort counters not flagged truncated"
                );
                let abort = r
                    .abort
                    .as_ref()
                    .unwrap_or_else(|| panic!("{label}: abort object missing"));
                assert_eq!(
                    abort.resumable,
                    inc.checkpoint.is_some(),
                    "{label}: resumability flag diverges from the checkpoint"
                );
                // Resume without the fault: must agree with the baseline.
                if let Some(cp) = inc.checkpoint {
                    let resumed = v
                        .resume(cp, &fault_opts(case, threads, reduction))
                        .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
                    match (&resumed.outcome, baseline) {
                        (Outcome::Holds, Some(b)) => {
                            assert!(b, "{label}: resume holds, baseline violated")
                        }
                        (Outcome::Violated(_), Some(b)) => {
                            assert!(!b, "{label}: resume violated, baseline holds")
                        }
                        // The budget tripping (in either leg) leaves no
                        // verdict to compare.
                        _ => {}
                    }
                }
            }
        },
    }
}

/// Draws one case and asserts that the compiled rule-evaluation engine is
/// observationally identical to the FO interpreter on it:
///
/// 1. **tuple-for-tuple** — over a bounded breadth-first exploration of the
///    composition, `successors_with` under compiled plans (plus the
///    footprint cache) returns *exactly* the successor list the interpreted
///    path returns, order included, for every (configuration, mover);
/// 2. **verdicts** — `RuleEval::Compiled` and `RuleEval::Interpreted` agree
///    across the engine × reduction matrix `{seq, par2} × {Full, Ample}`.
///    Both engines explore the same product graph, so even budget aborts
///    must match shape-for-shape;
/// 3. **counterexamples replay** — a violation found by the compiled path
///    must replay under the interpreter (`replay_counterexample` runs the
///    plain interpreted `successors`), keeping the interpreter the oracle
///    of record.
pub fn assert_compiled_agrees(rng: &mut XorShift) {
    compiled_agrees(&compgen::case(rng));
}

/// [`assert_compiled_agrees`] on an already-materialized case (the form
/// the shrinker re-runs).
pub fn compiled_agrees(case: &compgen::Case) {
    // --- 1. Tuple-for-tuple successor agreement on the composition. ---
    let mut v = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: SWARM_BUDGET,
        ..VerifyOptions::default()
    };
    let prop = v
        .parse_property(&case.property)
        .expect("generated property parses");
    let domain = v.domain_for(&prop, &opts);
    let comp = v.composition();
    let compiled = CompiledRules::new(comp);
    let cache = RuleCache::new(&compiled);
    let ctx = EvalCtx {
        compiled: Some(&compiled),
        cache: Some(&cache),
    };
    let mut frontier = comp.initial_configs(&case.database, &domain);
    assert_eq!(
        frontier,
        comp.initial_configs_with(&case.database, &domain, ctx),
        "initial configurations differ on `{}`",
        case.property
    );
    let mut seen: HashSet<Config> = frontier.iter().cloned().collect();
    for _ in 0..3 {
        let mut next = Vec::new();
        for cfg in &frontier {
            for mover in comp.movers() {
                let interpreted = comp.successors(&case.database, &domain, cfg, mover);
                let compiled_succs = comp.successors_with(&case.database, &domain, cfg, mover, ctx);
                assert_eq!(
                    interpreted, compiled_succs,
                    "successor sets differ for mover {mover:?} on `{}`",
                    case.property
                );
                for c in interpreted {
                    if seen.insert(c.clone()) {
                        next.push(c);
                    }
                }
            }
        }
        next.truncate(24);
        frontier = next;
    }

    // --- 2 & 3. Verdict agreement across the engine matrix, with replay. ---
    let run = |threads: Option<usize>, reduction: Reduction, rule_eval: RuleEval| {
        let mut v = Verifier::new(case.composition.clone());
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(case.database.clone()),
            fresh_values: Some(1),
            max_states: SWARM_BUDGET,
            threads,
            reduction,
            rule_eval,
            ..VerifyOptions::default()
        };
        let prop = v
            .parse_property(&case.property)
            .expect("generated property parses");
        let report = v.check(&prop, &opts).unwrap_or_else(|e| {
            panic!(
                "generator produced an unverifiable case `{}`: {e}",
                case.property
            )
        });
        if let Outcome::Violated(cex) = &report.outcome {
            v.replay_counterexample(&prop, cex, &opts)
                .unwrap_or_else(|e| {
                    panic!(
                        "threads={threads:?} reduction={reduction:?} \
                         rule_eval={rule_eval:?}: counterexample does not \
                         replay on `{}`: {e}",
                        case.property
                    )
                });
        }
        match report.outcome {
            Outcome::Holds => Ok(true),
            Outcome::Violated(_) => Ok(false),
            Outcome::Inconclusive(_) => Err(report.stats.states_visited),
        }
    };
    for threads in [None, Some(2)] {
        for reduction in [Reduction::Full, Reduction::Ample] {
            let c = run(threads, reduction, RuleEval::Compiled);
            let i = run(threads, reduction, RuleEval::Interpreted);
            assert_eq!(
                c.is_ok(),
                i.is_ok(),
                "threads={threads:?} reduction={reduction:?}: budget outcome \
                 differs between engines on `{}` (compiled: {c:?}, \
                 interpreted: {i:?})",
                case.property
            );
            if let (Ok(cv), Ok(iv)) = (c, i) {
                assert_eq!(
                    cv, iv,
                    "threads={threads:?} reduction={reduction:?}: verdict \
                     disagreement on `{}` (compiled: {cv}, interpreted: {iv})",
                    case.property
                );
            }
        }
    }
}
