//! Shared harness for the differential swarm (tests/swarm.rs) and its
//! pinned regression seeds (tests/regressions.rs).

use ddws_testkit::compgen;
use ddws_testkit::rng::XorShift;
use ddws_verifier::{DatabaseMode, Reduction, Verifier, VerifyError, VerifyOptions};

/// State budget for swarm cases: generous for the tiny generated
/// compositions, so budget exhaustion stays the exception.
const SWARM_BUDGET: u64 = 30_000;

/// Draws one case and asserts that `Reduction::Ample` and
/// `Reduction::Full` agree on its verdict.
///
/// Budget outcomes are handled explicitly rather than assumed away:
///
/// * both searches exceed the budget — agreement (trivially);
/// * only the *full* search exceeds it — fine: pruning interleavings is
///   the reduction's purpose, so the ample search may fit a budget the
///   full one blows;
/// * only the *ample* search exceeds it — also tolerated: on a violated
///   case the full nested DFS can stop early at a lasso the reduced
///   graph reaches later, so neither direction is comparable;
/// * both complete — the verdicts must be equal.
///
/// Any other error (parse failure, input-boundedness rejection) is a
/// generator bug and panics.
pub fn assert_case_agrees(rng: &mut XorShift) {
    let case = compgen::case(rng);
    let run = |reduction: Reduction| -> Result<bool, VerifyError> {
        let mut v = Verifier::new(case.composition.clone());
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(case.database.clone()),
            fresh_values: Some(1),
            max_states: SWARM_BUDGET,
            reduction,
            ..VerifyOptions::default()
        };
        v.check_str(&case.property, &opts)
            .map(|r| r.outcome.holds())
    };
    let full = run(Reduction::Full);
    let ample = run(Reduction::Ample);
    match (full, ample) {
        (Ok(f), Ok(a)) => assert_eq!(
            f, a,
            "verdict disagreement on `{}` (full: {f}, ample: {a})",
            case.property
        ),
        (Err(VerifyError::Budget(_)), _) | (_, Err(VerifyError::Budget(_))) => {}
        (Err(e), _) | (_, Err(e)) => {
            panic!(
                "generator produced an unverifiable case `{}`: {e}",
                case.property
            )
        }
    }
}
