//! Shared harness for the differential swarm (tests/swarm.rs), its pinned
//! regression seeds (tests/regressions.rs), and the telemetry invariant
//! suite (tests/telemetry_invariants.rs).

// Each including test binary uses a subset of these helpers.
#![allow(dead_code)]
#![allow(unused_imports)]

use ddws_model::{CompiledRules, Config, EvalCtx, RuleCache, StatePool};
use ddws_testkit::compgen;
use ddws_testkit::rng::XorShift;
use ddws_verifier::{
    DatabaseMode, Outcome, Reduction, RuleEval, StateRepr, Verifier, VerifyOptions,
};
use std::collections::HashSet;

// The fault/report contract lives in the testkit now (feature `contract`)
// so the fault swarm, the telemetry invariant suite, and the
// deterministic simulator all assert one definition. Re-exported here so
// the test binaries keep their `common::` spelling.
pub use ddws_testkit::contract::{
    assert_fault_case, assert_fault_contract, assert_labelled, fault_opts, report_contract,
    silence_injected_panics, SWARM_BUDGET,
};

/// Runs `check` on a freshly drawn case; if it panics, delta-debugs the
/// case down to a 1-minimal spec that still fails, prints it, and
/// re-raises the original panic (so `gen::cases` still reports the
/// sub-seed to pin in tests/regressions.rs).
pub fn shrink_on_failure(rng: &mut XorShift, check: fn(&compgen::Case)) {
    let spec = compgen::spec(rng);
    let case = spec.build().expect("generated composition is well-formed");
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&case)));
    let Err(payload) = outcome else { return };
    // Shrink quietly: the loop re-runs the failing check once per
    // candidate cut, and every *accepted* cut would otherwise dump one
    // more panic message and backtrace into the output.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let min = compgen::minimize(&spec, |c| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(c))).is_err()
    });
    std::panic::set_hook(prev);
    eprintln!(
        "swarm: minimized the failing case from {} to {} structural elements:\n{}",
        spec.size(),
        min.size(),
        min
    );
    std::panic::resume_unwind(payload);
}

/// Whether the case's property is violated under the sequential full
/// search — the reproduction predicate for the pinned shrinker regression.
pub fn violates_seq_full(case: &compgen::Case) -> bool {
    let mut v = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: SWARM_BUDGET,
        ..VerifyOptions::default()
    };
    matches!(
        v.check_str(&case.property, &opts),
        Ok(r) if matches!(r.outcome, Outcome::Violated(_))
    )
}

/// Draws one case and asserts that `Reduction::Ample` and
/// `Reduction::Full` agree on its verdict.
///
/// Budget outcomes are handled explicitly rather than assumed away:
///
/// * both searches exceed the budget — agreement (trivially);
/// * only the *full* search exceeds it — fine: pruning interleavings is
///   the reduction's purpose, so the ample search may fit a budget the
///   full one blows;
/// * only the *ample* search exceeds it — also tolerated: on a violated
///   case the full nested DFS can stop early at a lasso the reduced
///   graph reaches later, so neither direction is comparable;
/// * both complete — the verdicts must be equal.
///
/// Any other error (parse failure, input-boundedness rejection) is a
/// generator bug and panics.
pub fn assert_case_agrees(rng: &mut XorShift) {
    case_agrees(&compgen::case(rng));
}

/// [`assert_case_agrees`] on an already-materialized case (the form the
/// shrinker re-runs).
pub fn case_agrees(case: &compgen::Case) {
    // `None` = the search stopped on its state budget (inconclusive).
    let run = |reduction: Reduction| -> Option<bool> {
        let mut v = Verifier::new(case.composition.clone());
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(case.database.clone()),
            fresh_values: Some(1),
            max_states: SWARM_BUDGET,
            reduction,
            ..VerifyOptions::default()
        };
        let report = v.check_str(&case.property, &opts).unwrap_or_else(|e| {
            panic!(
                "generator produced an unverifiable case `{}`: {e}",
                case.property
            )
        });
        match report.outcome {
            Outcome::Holds => Some(true),
            Outcome::Violated(_) => Some(false),
            Outcome::Inconclusive(_) => None,
        }
    };
    if let (Some(f), Some(a)) = (run(Reduction::Full), run(Reduction::Ample)) {
        assert_eq!(
            f, a,
            "verdict disagreement on `{}` (full: {f}, ample: {a})",
            case.property
        );
    }
}

/// Draws one case and asserts that the compiled rule-evaluation engine is
/// observationally identical to the FO interpreter on it:
///
/// 1. **tuple-for-tuple** — over a bounded breadth-first exploration of the
///    composition, `successors_with` under compiled plans (plus the
///    footprint cache) returns *exactly* the successor list the interpreted
///    path returns, order included, for every (configuration, mover);
/// 2. **verdicts** — `RuleEval::Compiled` and `RuleEval::Interpreted` agree
///    across the engine × reduction matrix `{seq, par2} × {Full, Ample}`.
///    Both engines explore the same product graph, so even budget aborts
///    must match shape-for-shape;
/// 3. **counterexamples replay** — a violation found by the compiled path
///    must replay under the interpreter (`replay_counterexample` runs the
///    plain interpreted `successors`), keeping the interpreter the oracle
///    of record.
pub fn assert_compiled_agrees(rng: &mut XorShift) {
    compiled_agrees(&compgen::case(rng));
}

/// [`assert_compiled_agrees`] on an already-materialized case (the form
/// the shrinker re-runs).
pub fn compiled_agrees(case: &compgen::Case) {
    // --- 1. Tuple-for-tuple successor agreement on the composition. ---
    let mut v = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: SWARM_BUDGET,
        ..VerifyOptions::default()
    };
    let prop = v
        .parse_property(&case.property)
        .expect("generated property parses");
    let domain = v.domain_for(&prop, &opts);
    let comp = v.composition();
    let compiled = CompiledRules::new(comp);
    let cache = RuleCache::new(&compiled);
    let ctx = EvalCtx {
        compiled: Some(&compiled),
        cache: Some(&cache),
    };
    let mut frontier = comp.initial_configs(&case.database, &domain);
    assert_eq!(
        frontier,
        comp.initial_configs_with(&case.database, &domain, ctx),
        "initial configurations differ on `{}`",
        case.property
    );
    let mut seen: HashSet<Config> = frontier.iter().cloned().collect();
    for _ in 0..3 {
        let mut next = Vec::new();
        for cfg in &frontier {
            for mover in comp.movers() {
                let interpreted = comp.successors(&case.database, &domain, cfg, mover);
                let compiled_succs = comp.successors_with(&case.database, &domain, cfg, mover, ctx);
                assert_eq!(
                    interpreted, compiled_succs,
                    "successor sets differ for mover {mover:?} on `{}`",
                    case.property
                );
                for c in interpreted {
                    if seen.insert(c.clone()) {
                        next.push(c);
                    }
                }
            }
        }
        next.truncate(24);
        frontier = next;
    }

    // --- 2 & 3. Verdict agreement across the engine matrix, with replay. ---
    let run = |threads: Option<usize>, reduction: Reduction, rule_eval: RuleEval| {
        let mut v = Verifier::new(case.composition.clone());
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(case.database.clone()),
            fresh_values: Some(1),
            max_states: SWARM_BUDGET,
            threads,
            reduction,
            rule_eval,
            ..VerifyOptions::default()
        };
        let prop = v
            .parse_property(&case.property)
            .expect("generated property parses");
        let report = v.check(&prop, &opts).unwrap_or_else(|e| {
            panic!(
                "generator produced an unverifiable case `{}`: {e}",
                case.property
            )
        });
        if let Outcome::Violated(cex) = &report.outcome {
            v.replay_counterexample(&prop, cex, &opts)
                .unwrap_or_else(|e| {
                    panic!(
                        "threads={threads:?} reduction={reduction:?} \
                         rule_eval={rule_eval:?}: counterexample does not \
                         replay on `{}`: {e}",
                        case.property
                    )
                });
        }
        match report.outcome {
            Outcome::Holds => Ok(true),
            Outcome::Violated(_) => Ok(false),
            Outcome::Inconclusive(_) => Err(report.stats.states_visited),
        }
    };
    for threads in [None, Some(2)] {
        for reduction in [Reduction::Full, Reduction::Ample] {
            let c = run(threads, reduction, RuleEval::Compiled);
            let i = run(threads, reduction, RuleEval::Interpreted);
            assert_eq!(
                c.is_ok(),
                i.is_ok(),
                "threads={threads:?} reduction={reduction:?}: budget outcome \
                 differs between engines on `{}` (compiled: {c:?}, \
                 interpreted: {i:?})",
                case.property
            );
            if let (Ok(cv), Ok(iv)) = (c, i) {
                assert_eq!(
                    cv, iv,
                    "threads={threads:?} reduction={reduction:?}: verdict \
                     disagreement on `{}` (compiled: {cv}, interpreted: {iv})",
                    case.property
                );
            }
        }
    }
}

/// Draws one case and asserts that the compact (interned, bit-packed)
/// state representation is observationally identical to the legacy
/// `Config` representation on it:
///
/// 1. **tuple-for-tuple** — over a bounded breadth-first exploration of
///    the composition, `StatePool::successors` expanded back to `Config`s
///    returns *exactly* the successor list the legacy stepper returns,
///    order included, for every (configuration, mover). Each side drives
///    its own compiled-kernel cache, and the hit/miss totals must match:
///    the interned footprints have to key the rule cache exactly as the
///    legacy `Ext` footprints do;
/// 2. **verdicts** — `StateRepr::Compact` and `StateRepr::Legacy` agree
///    across `{seq, par2} × {Full, Ample} × {Compiled, Interpreted}`, and
///    `states_expanded` is equal wherever the engine is deterministic:
///    always for the sequential nested DFS, and for par2 under `Full`
///    (the parallel engine explores the whole graph, marking each state
///    visited before it is enqueued, so each is expanded exactly once).
///    Under par2 + `Ample` the C3 `already_visited` probe races, so only
///    the verdict is compared there;
/// 3. **counterexamples replay** — a violation found under the compact
///    representation must replay under the legacy interpreted stepper
///    (`replay_counterexample`), keeping legacy the oracle of record.
pub fn assert_repr_agrees(rng: &mut XorShift) {
    repr_agrees(&compgen::case(rng));
}

/// [`assert_repr_agrees`] on an already-materialized case (the form the
/// shrinker re-runs).
pub fn repr_agrees(case: &compgen::Case) {
    // --- 1. Tuple-for-tuple successor agreement on the composition. ---
    let mut v = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: SWARM_BUDGET,
        ..VerifyOptions::default()
    };
    let prop = v
        .parse_property(&case.property)
        .expect("generated property parses");
    let domain = v.domain_for(&prop, &opts);
    let comp = v.composition();
    let pool = StatePool::new(comp, ddws_verifier::domain::packing_capacity(comp, &domain));
    let compiled_l = CompiledRules::new(comp);
    let cache_l = RuleCache::new(&compiled_l);
    let ctx_l = EvalCtx {
        compiled: Some(&compiled_l),
        cache: Some(&cache_l),
    };
    let compiled_c = CompiledRules::new(comp);
    let cache_c = RuleCache::new(&compiled_c);
    let ctx_c = EvalCtx {
        compiled: Some(&compiled_c),
        cache: Some(&cache_c),
    };
    let frontier = comp.initial_configs_with(&case.database, &domain, ctx_l);
    let compact_init: Vec<Config> = pool
        .initial_configs(comp, &case.database, &domain, ctx_c)
        .iter()
        .map(|cc| pool.expand(comp, cc))
        .collect();
    assert_eq!(
        frontier, compact_init,
        "initial configurations differ between representations on `{}`",
        case.property
    );
    let mut frontier = frontier;
    let mut seen: HashSet<Config> = frontier.iter().cloned().collect();
    for _ in 0..3 {
        let mut next = Vec::new();
        for cfg in &frontier {
            let cc = pool.compact(comp, cfg);
            for mover in comp.movers() {
                let legacy = comp.successors_with(&case.database, &domain, cfg, mover, ctx_l);
                let compact: Vec<Config> = pool
                    .successors(comp, &case.database, &domain, &cc, mover, ctx_c)
                    .iter()
                    .map(|s| pool.expand(comp, s))
                    .collect();
                assert_eq!(
                    legacy, compact,
                    "successor sets differ for mover {mover:?} on `{}`",
                    case.property
                );
                for c in legacy {
                    if seen.insert(c.clone()) {
                        next.push(c);
                    }
                }
            }
        }
        next.truncate(24);
        frontier = next;
    }
    assert_eq!(
        (cache_l.hits(), cache_l.misses()),
        (cache_c.hits(), cache_c.misses()),
        "rule-cache hit/miss totals diverge between representations on `{}` \
         (interned footprints must key the cache exactly as legacy Ext \
         footprints do)",
        case.property
    );
    // Construction pre-interns the two empty extensions (2 misses); any
    // actual traversal must intern beyond that.
    if !seen.is_empty() {
        assert!(
            pool.intern_hits() + pool.intern_misses() > 2,
            "the compact stepper did not touch the interner on `{}`",
            case.property
        );
    }

    // --- 2 & 3. Verdict + expansion agreement across the matrix. ---
    let run = |threads: Option<usize>,
               reduction: Reduction,
               rule_eval: RuleEval,
               state_repr: StateRepr|
     -> Result<(bool, u64), u64> {
        let mut v = Verifier::new(case.composition.clone());
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(case.database.clone()),
            fresh_values: Some(1),
            max_states: SWARM_BUDGET,
            threads,
            reduction,
            rule_eval,
            state_repr,
            ..VerifyOptions::default()
        };
        let prop = v
            .parse_property(&case.property)
            .expect("generated property parses");
        let report = v.check(&prop, &opts).unwrap_or_else(|e| {
            panic!(
                "generator produced an unverifiable case `{}`: {e}",
                case.property
            )
        });
        if state_repr == StateRepr::Compact {
            if let Outcome::Violated(cex) = &report.outcome {
                v.replay_counterexample(&prop, cex, &opts)
                    .unwrap_or_else(|e| {
                        panic!(
                            "threads={threads:?} reduction={reduction:?} \
                             rule_eval={rule_eval:?}: compact counterexample \
                             does not replay on `{}`: {e}",
                            case.property
                        )
                    });
            }
        }
        match report.outcome {
            Outcome::Holds => Ok((true, report.stats.states_expanded)),
            Outcome::Violated(_) => Ok((false, report.stats.states_expanded)),
            Outcome::Inconclusive(_) => Err(report.stats.states_visited),
        }
    };
    for threads in [None, Some(2)] {
        for reduction in [Reduction::Full, Reduction::Ample] {
            for rule_eval in [RuleEval::Compiled, RuleEval::Interpreted] {
                let c = run(threads, reduction, rule_eval, StateRepr::Compact);
                let l = run(threads, reduction, rule_eval, StateRepr::Legacy);
                assert_eq!(
                    c.is_ok(),
                    l.is_ok(),
                    "threads={threads:?} reduction={reduction:?} \
                     rule_eval={rule_eval:?}: budget outcome differs between \
                     representations on `{}` (compact: {c:?}, legacy: {l:?})",
                    case.property
                );
                if let (Ok((cv, ce)), Ok((lv, le))) = (c, l) {
                    assert_eq!(
                        cv, lv,
                        "threads={threads:?} reduction={reduction:?} \
                         rule_eval={rule_eval:?}: verdict disagreement on `{}` \
                         (compact: {cv}, legacy: {lv})",
                        case.property
                    );
                    let deterministic = threads.is_none() || reduction == Reduction::Full;
                    if deterministic {
                        assert_eq!(
                            ce, le,
                            "threads={threads:?} reduction={reduction:?} \
                             rule_eval={rule_eval:?}: states_expanded differs \
                             between representations on `{}` (compact: {ce}, \
                             legacy: {le})",
                            case.property
                        );
                    }
                }
            }
        }
    }
}
