//! Lossy-vs-perfect channel differential (DESIGN.md §3.11).
//!
//! The paper's lossy-channel semantics only *adds* behaviour: loss is
//! resolved at enqueue time, so every perfect run is a lossy run in which
//! no drop fired, and the lossy trace set is a superset of the perfect
//! one. For any LTL-FO property (checked over all runs) that gives the
//! subsumption laws this suite enforces across the scenario library and
//! the compgen corpus:
//!
//! * lossy `Holds`   ⇒ perfect `Holds`;
//! * perfect `Violated` ⇒ lossy `Violated`
//!
//! (both are the same forbidden pair: lossy-holds with perfect-violated).
//!
//! Where the two semantics *do* diverge is message order: a perfect FIFO
//! queue delivers in send order, while a drop can make a later message
//! arrive first. That divergence is pinned here as an expected-failure
//! gadget — a property that holds under perfect channels and is violated
//! under lossy ones — so the loss branch of the successor computation
//! can never silently stop branching.

use ddws::scenarios::{bank_loan, chains, ecommerce, travel};
use ddws_model::{Composition, CompositionBuilder, QueueKind, Semantics};
use ddws_relational::{Instance, Tuple};
use ddws_testkit::{compgen, gen, seed_from};
use ddws_verifier::{DatabaseMode, Outcome, Verifier, VerifyOptions};

fn opts(db: Instance) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        max_states: 500_000,
        ..VerifyOptions::default()
    }
}

fn label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Holds => "holds",
        Outcome::Violated(_) => "violated",
        Outcome::Inconclusive(_) => "inconclusive",
    }
}

/// Checks one property under both channel semantics and asserts the
/// subsumption laws. Returns the `(lossy, perfect)` verdict labels.
fn differential(
    name: &str,
    build: impl Fn(bool) -> (Composition, Instance),
    property: &str,
) -> (&'static str, &'static str) {
    let run = |lossy: bool| {
        let (comp, db) = build(lossy);
        let mut v = Verifier::new(comp);
        let report = v
            .check_str(property, &opts(db))
            .unwrap_or_else(|e| panic!("{name} (lossy={lossy}): {e}"));
        label(&report.outcome)
    };
    let lossy = run(true);
    let perfect = run(false);
    assert!(
        !(lossy == "holds" && perfect == "violated"),
        "{name}: subsumption breach — the property holds over the lossy \
         superset of runs yet a perfect run violates it\n  property: {property}"
    );
    (lossy, perfect)
}

// ---------------------------------------------------------------------
// Scenario library
// ---------------------------------------------------------------------

/// The single-customer bank-loan database of tests/bank_loan.rs (kept
/// small so the exhaustive perfect/lossy pair stays cheap).
fn bank_small_db(comp: &mut Composition) -> Instance {
    let c1 = comp.symbols.intern("c1");
    let s1 = comp.symbols.intern("s1");
    let alice = comp.symbols.intern("alice");
    let small = comp.symbols.intern("small");
    let fair = comp.symbols.intern("fair");
    let mut db = Instance::empty(&comp.voc);
    let ins = |db: &mut Instance, rel: &str, t: &[ddws_relational::Value]| {
        let id = comp.voc.lookup(rel).unwrap();
        db.relation_mut(id).insert(Tuple::from(t));
    };
    ins(&mut db, "A.wants", &[c1, small]);
    ins(&mut db, "O.customer", &[c1, s1, alice]);
    ins(&mut db, "CR.creditRating", &[s1, fair]);
    db
}

fn nested_sem() -> Semantics {
    Semantics {
        nested_send_skips_empty: true,
        ..Semantics::default()
    }
}

#[test]
fn scenario_library_respects_lossy_subsumption() {
    let mut results = Vec::new();

    for (prop_name, prop) in [
        ("ratings_reflect_db", bank_loan::PROP_RATINGS_REFLECT_DB),
        ("no_rating_ever", bank_loan::PROP_NO_RATING_EVER),
        ("approvals_justified", bank_loan::PROP_APPROVALS_JUSTIFIED),
        (
            "letter_implies_application",
            bank_loan::PROP_LETTER_IMPLIES_APPLICATION,
        ),
    ] {
        let pair = differential(
            &format!("bank_loan/{prop_name}"),
            |lossy| {
                let mut comp = bank_loan::composition(lossy, nested_sem());
                let db = bank_small_db(&mut comp);
                (comp, db)
            },
            prop,
        );
        results.push((format!("bank_loan/{prop_name}"), pair));
    }

    for (prop_name, prop) in [
        ("charges_are_valid", ecommerce::PROP_CHARGES_ARE_VALID),
        ("ship_from_catalog", ecommerce::PROP_SHIP_FROM_CATALOG),
    ] {
        let pair = differential(
            &format!("ecommerce/{prop_name}"),
            |lossy| {
                let mut comp = ecommerce::composition(lossy, Semantics::default());
                let db = ecommerce::demo_database(&mut comp);
                (comp, db)
            },
            prop,
        );
        results.push((format!("ecommerce/{prop_name}"), pair));
    }

    let pair = differential(
        "travel/results_are_real",
        |lossy| {
            let mut comp = travel::composition(lossy, nested_sem());
            let db = travel::demo_database(&mut comp);
            (comp, db)
        },
        travel::PROP_RESULTS_ARE_REAL,
    );
    results.push(("travel/results_are_real".to_string(), pair));

    for n in [2usize, 3] {
        let pair = differential(
            &format!("chains/{n}"),
            |lossy| {
                let mut comp = chains::composition(n, lossy, Semantics::default());
                let db = chains::database(&mut comp, 1);
                (comp, db)
            },
            &chains::prop_integrity(n),
        );
        results.push((format!("chains/{n}"), pair));
    }

    // Known verdicts stay pinned under BOTH semantics: the properties the
    // scenario tests assert under lossy channels keep their verdict on
    // the perfect sub-system (a perfect flip would mean the lossy verdict
    // was carried by the loss branch alone — subsumption forbids it for
    // holds, and these violations all have loss-free counterexamples).
    for (name, (lossy, perfect)) in &results {
        assert_eq!(
            lossy, perfect,
            "{name}: scenario verdict diverged between channel semantics"
        );
    }
}

// ---------------------------------------------------------------------
// Compgen corpus
// ---------------------------------------------------------------------

/// The generated corpus differential: `CaseSpec::build` (lossy, as drawn)
/// against `CaseSpec::build_lossless` — identical structure, rules,
/// database, and property; only the channel loss flag differs. The
/// generated property templates are all *receive-guarded* (every channel
/// atom observes a delivery) or sender-side, so loss — which only removes
/// deliveries — cannot change their verdict: the differential asserts
/// verdict equality, and any regression to that stronger fact (or to the
/// one-sided subsumption law) fails here with the seed to replay.
#[test]
fn compgen_corpus_is_loss_insensitive() {
    gen::cases(96, seed_from("lossy_differential"), |rng| {
        let spec = compgen::spec(rng);
        let lossy_case = spec.build().expect("drawn spec builds");
        let perfect_case = spec.build_lossless().expect("lossless twin builds");
        assert_eq!(lossy_case.property, perfect_case.property);

        let verdict = |case: compgen::Case| {
            let mut v = Verifier::new(case.composition);
            let report = v
                .check_str(&case.property, &opts(case.database))
                .expect("compgen case verifies");
            label(&report.outcome)
        };
        let lossy = verdict(lossy_case);
        let perfect = verdict(perfect_case);
        assert!(
            !(lossy == "holds" && perfect == "violated"),
            "subsumption breach on spec {spec:?}"
        );
        assert_eq!(
            lossy, perfect,
            "receive-guarded property distinguished the loss branch on spec {spec:?}"
        );
    });
}

// ---------------------------------------------------------------------
// The pinned divergence gadget
// ---------------------------------------------------------------------

/// A two-peer composition whose sender emits `t1` then `t2` (state-driven,
/// no inputs) over one flat channel, while the receiver records the first
/// token it ever sees.
fn fifo_gadget(lossy: bool) -> Composition {
    let mut b = CompositionBuilder::new();
    b.semantics(Semantics::default());
    b.default_lossy(lossy);
    b.channel("c", 1, QueueKind::Flat, "S", "R");
    b.peer("S")
        .state("sent1", 1)
        .state("sent2", 1)
        .send_rule(
            "c",
            &["x"],
            "(x = \"t1\" and not sent1(\"on\")) \
             or (x = \"t2\" and sent1(\"on\") and not sent2(\"on\"))",
        )
        .state_insert_rule("sent1", &["x"], "x = \"on\" and not sent1(\"on\")")
        .state_insert_rule(
            "sent2",
            &["x"],
            "x = \"on\" and sent1(\"on\") and not sent2(\"on\")",
        );
    b.peer("R")
        .state("got", 1)
        .state("first", 1)
        .state_insert_rule("got", &["x"], "?c(x)")
        .state_insert_rule(
            "first",
            &["x"],
            "?c(x) and not (got(\"t1\") or got(\"t2\"))",
        );
    b.build().expect("fifo gadget is well-formed")
}

/// The expected-failure gadget: "t2 is never the first token received"
/// *holds* under perfect channels (FIFO delivers in send order) and is
/// *violated* under lossy ones (dropping t1 in transit lets t2 arrive
/// first). This pins the one observable the two semantics genuinely
/// disagree on — delivery order under loss — in the direction subsumption
/// permits.
#[test]
fn reorder_gadget_diverges_in_the_permitted_direction() {
    let prop = r#"G (not R.first("t2"))"#;
    let verdict = |lossy: bool| {
        let mut v = Verifier::new(fifo_gadget(lossy));
        let db = Instance::empty(&v.composition().voc);
        let report = v.check_str(prop, &opts(db)).expect("gadget verifies");
        label(&report.outcome)
    };
    assert_eq!(
        verdict(false),
        "holds",
        "perfect FIFO must deliver t1 before t2"
    );
    assert_eq!(
        verdict(true),
        "violated",
        "the loss branch must make t2-first reachable"
    );
    // And the gadget's composition is well within the fragment: the
    // divergence is semantic, not a boundary artifact.
    fifo_gadget(true)
        .check_input_bounded(Default::default())
        .expect("gadget is input-bounded");
}
