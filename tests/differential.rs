//! Differential tests across the full engine × reduction × rule-eval
//! matrix: the sequential product-search engine (`threads: None`, CVWY
//! nested DFS) and the parallel engine (`threads: Some(n)`, work-stealing
//! reachability + SCC lasso extraction), each under `Reduction::Full` and
//! `Reduction::Ample`, each with `RuleEval::Compiled` and
//! `RuleEval::Interpreted`, across every scenario composition.
//!
//! The contract under test (see DESIGN.md, "Parallel search",
//! "Partial-order reduction" and §3.8 "Compiled rule kernels"):
//!
//! * verdicts are **engine-, reduction- and rule-eval-independent** — all
//!   sixteen combinations return the same `Holds`/`Violated` answer;
//! * counterexamples may differ between combinations, but each returned
//!   counterexample must **replay**: its run must be a legal violating
//!   lasso of the composition over the counterexample's database
//!   ([`Verifier::replay_counterexample`]);
//! * state budgets bind every engine, with overshoot bounded by the
//!   worker count, and budget aborts carry `truncated` statistics.

use ddws::scenarios::{bank_loan, chains, ecommerce, travel};
use ddws_model::Semantics;
use ddws_relational::Instance;
use ddws_verifier::{
    AbortReason, BufferReporter, DatabaseMode, Outcome, Reduction, ReporterHandle, RuleEval,
    RunReport, Verifier, VerifyOptions,
};
use std::sync::Arc;

/// The engine matrix: sequential, and parallel at 1/2/4 workers.
const ENGINES: [Option<usize>; 4] = [None, Some(1), Some(2), Some(4)];

/// The reduction matrix.
const REDUCTIONS: [Reduction; 2] = [Reduction::Full, Reduction::Ample];

/// The rule-evaluation matrix: compiled join/filter/project plans with the
/// footprint cache, and the FO interpreter they must be indistinguishable
/// from.
const RULE_EVALS: [RuleEval; 2] = [RuleEval::Compiled, RuleEval::Interpreted];

fn fixed_opts(db: Instance) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        ..VerifyOptions::default()
    }
}

fn nested_sem() -> Semantics {
    Semantics {
        nested_send_skips_empty: true,
        ..Semantics::default()
    }
}

/// Checks `property` once per engine × reduction combination, asserting the
/// expected verdict from each and replaying every returned counterexample.
fn assert_engines_agree(
    make: &dyn Fn() -> (Verifier, VerifyOptions),
    property: &str,
    expect_holds: bool,
) {
    for threads in ENGINES {
        for reduction in REDUCTIONS {
            for rule_eval in RULE_EVALS {
                let (mut v, mut opts) = make();
                opts.threads = threads;
                opts.reduction = reduction;
                opts.rule_eval = rule_eval;
                let prop = v.parse_property(property).expect("property parses");
                let report = v.check(&prop, &opts).expect("verification completes");
                assert_eq!(
                    report.outcome.holds(),
                    expect_holds,
                    "engine threads={threads:?} reduction={reduction:?} \
                     rule_eval={rule_eval:?} disagrees on {property:?}"
                );
                if let Outcome::Violated(cex) = &report.outcome {
                    v.replay_counterexample(&prop, cex, &opts)
                        .unwrap_or_else(|e| {
                            panic!(
                                "threads={threads:?} reduction={reduction:?} \
                                 rule_eval={rule_eval:?}: \
                                 counterexample does not replay: {e}\n{cex:?}"
                            )
                        });
                }
            }
        }
    }
}

fn bank_loan_setup() -> (Verifier, VerifyOptions) {
    let mut v = Verifier::new(bank_loan::composition(true, nested_sem()));
    let db = bank_loan::demo_database(v.composition_mut());
    (v, fixed_opts(db))
}

#[test]
fn bank_loan_holds_on_every_engine() {
    assert_engines_agree(&bank_loan_setup, bank_loan::PROP_RATINGS_REFLECT_DB, true);
}

#[test]
fn bank_loan_violation_replays_on_every_engine() {
    assert_engines_agree(&bank_loan_setup, bank_loan::PROP_NO_RATING_EVER, false);
}

fn ecommerce_setup() -> (Verifier, VerifyOptions) {
    let mut v = Verifier::new(ecommerce::composition(true, Semantics::default()));
    let db = ecommerce::demo_database(v.composition_mut());
    (v, fixed_opts(db))
}

#[test]
fn ecommerce_holds_on_every_engine() {
    assert_engines_agree(&ecommerce_setup, ecommerce::PROP_CHARGES_ARE_VALID, true);
}

#[test]
fn ecommerce_violation_replays_on_every_engine() {
    // The storefront does get charge confirmations: "no confirmation ever
    // arrives" is refuted by the run that buys the book with the visa.
    assert_engines_agree(
        &ecommerce_setup,
        "G (forall card, status: Store.?charged(card, status) -> false)",
        false,
    );
}

fn travel_setup() -> (Verifier, VerifyOptions) {
    let mut v = Verifier::new(travel::composition(true, nested_sem()));
    let db = travel::demo_database(v.composition_mut());
    (v, fixed_opts(db))
}

#[test]
fn travel_holds_on_every_engine() {
    assert_engines_agree(&travel_setup, travel::PROP_RESULTS_ARE_REAL, true);
}

#[test]
fn travel_violation_replays_on_every_engine() {
    // The nested `offers` channel delivers both LIS flights in one message,
    // so "never both results at once" is violated (tests/scenarios.rs
    // establishes this for the sequential engine).
    assert_engines_agree(
        &travel_setup,
        "G (not (Portal.results(\"LIS\", \"f1\") and Portal.results(\"LIS\", \"f2\")))",
        false,
    );
}

fn chains_setup() -> (Verifier, VerifyOptions) {
    let mut v = Verifier::new(chains::composition(3, true, Semantics::default()));
    let db = chains::database(v.composition_mut(), 1);
    (v, fixed_opts(db))
}

#[test]
fn chains_holds_on_every_engine() {
    let prop = chains::prop_integrity(3);
    assert_engines_agree(&chains_setup, &prop, true);
}

#[test]
fn chains_violation_replays_on_every_engine() {
    // The relay does forward the token: "P1 never receives" is refuted.
    assert_engines_agree(&chains_setup, "G (forall x: P1.?hop0(x) -> false)", false);
}

fn auditor_chain_setup() -> (Verifier, VerifyOptions) {
    let mut v = Verifier::new(chains::composition_with_auditor(
        3,
        6,
        true,
        Semantics::default(),
    ));
    let db = chains::database(v.composition_mut(), 1);
    (v, fixed_opts(db))
}

#[test]
fn auditor_chain_holds_on_every_engine() {
    // The auditor is independent of the chain, so the ample reduction
    // schedules it alone almost everywhere — the verdict must not notice.
    let prop = chains::prop_integrity(3);
    assert_engines_agree(&auditor_chain_setup, &prop, true);
}

#[test]
fn auditor_chain_violation_replays_on_every_engine() {
    assert_engines_agree(
        &auditor_chain_setup,
        "G (forall x: P1.?hop0(x) -> false)",
        false,
    );
}

#[test]
fn auditor_chain_reduction_prunes_states() {
    // The quantitative claim behind E9: on the auditor chain the ample
    // reduction visits at least 2× fewer product states than the full
    // expansion, on both engines, with the verdict unchanged.
    let prop = chains::prop_integrity(3);
    for threads in [None, Some(2)] {
        let mut stats = Vec::new();
        for reduction in REDUCTIONS {
            let (mut v, mut opts) = auditor_chain_setup();
            opts.threads = threads;
            opts.reduction = reduction;
            let report = v.check_str(&prop, &opts).expect("verification completes");
            assert!(report.outcome.holds(), "threads={threads:?}");
            stats.push(report.stats);
        }
        let (full, ample) = (stats[0], stats[1]);
        assert_eq!(full.ample_hits, 0, "full search never reduces");
        assert!(
            ample.ample_hits > 0,
            "threads={threads:?}: reduction engaged"
        );
        assert!(
            ample.states_visited * 2 <= full.states_visited,
            "threads={threads:?}: expected ≥2× fewer states, got {} vs {}",
            ample.states_visited,
            full.states_visited
        );
    }
}

#[test]
fn rule_cache_metrics_surface_on_both_engines() {
    // SearchStats must report rule-evaluation metrics under both search
    // engines: the compiled run shows cache traffic (hits after the first
    // revisit, misses for the cold evaluations) and nonzero evaluation
    // time; the interpreted run shows timing only — its meter memoizes
    // nothing, so hits stay at zero.
    let prop = chains::prop_integrity(3);
    for threads in [None, Some(2)] {
        let (mut v, mut opts) = chains_setup();
        opts.threads = threads;
        opts.rule_eval = RuleEval::Compiled;
        let compiled = v.check_str(&prop, &opts).expect("verification completes");
        assert!(compiled.outcome.holds());
        assert!(
            compiled.stats.rule_cache_hits > 0,
            "threads={threads:?}: footprint cache never hit"
        );
        assert!(
            compiled.stats.rule_cache_misses > 0,
            "threads={threads:?}: cold evaluations must miss"
        );
        assert!(
            compiled.stats.rule_eval_ns > 0,
            "threads={threads:?}: rule timing not metered"
        );

        let (mut v, mut opts) = chains_setup();
        opts.threads = threads;
        opts.rule_eval = RuleEval::Interpreted;
        let interpreted = v.check_str(&prop, &opts).expect("verification completes");
        assert!(interpreted.outcome.holds());
        assert_eq!(
            interpreted.stats.rule_cache_hits, 0,
            "threads={threads:?}: the interpreted meter memoizes nothing"
        );
        assert!(
            interpreted.stats.rule_eval_ns > 0,
            "threads={threads:?}: interpreted timing not metered"
        );
    }
}

#[test]
fn all_databases_mode_agrees_and_replays() {
    // ∃-database verification: the oracle must *decide* `P0.token` facts to
    // build a violating run, and the replayed counterexample runs over the
    // materialized decided database.
    let make = || {
        let v = Verifier::new(chains::composition(2, true, Semantics::default()));
        let opts = VerifyOptions {
            database: DatabaseMode::AllDatabases,
            fresh_values: Some(1),
            ..VerifyOptions::default()
        };
        (v, opts)
    };
    assert_engines_agree(&make, "G (forall x: P1.?hop0(x) -> false)", false);
}

#[test]
fn run_reports_are_deterministic_and_round_trip() {
    // The non-timing face of a `RunReport` is a pure function of the
    // (composition, property, options) triple: repeating a run at a fixed
    // seed reproduces it byte-for-byte after `redacted()` zeroes the phase
    // timers. The timing face must be present (a completed search took
    // time) and the canonical JSON must round-trip losslessly.
    //
    // The byte-identity claim is restricted to deterministic schedules
    // (`None` and `Some(1)`): at two or more workers the rule-cache
    // counters depend on which worker wins a footprint race, so only the
    // round-trip and timing assertions apply there.
    let prop_holds = chains::prop_integrity(3);
    for (property, expect_holds) in [
        (prop_holds.as_str(), true),
        ("G (forall x: P1.?hop0(x) -> false)", false),
    ] {
        for threads in ENGINES {
            let run = || {
                let (mut v, mut opts) = chains_setup();
                opts.threads = threads;
                v.check_str(property, &opts)
                    .expect("verification completes")
            };
            let (a, b) = (run(), run());
            assert_eq!(a.outcome.holds(), expect_holds, "threads={threads:?}");
            if matches!(threads, None | Some(1)) {
                assert_eq!(
                    a.telemetry.redacted().to_json(),
                    b.telemetry.redacted().to_json(),
                    "threads={threads:?}: non-timing report fields drifted \
                     between identical runs on {property:?}"
                );
            }
            assert!(
                a.telemetry.phases.total_ns > 0,
                "threads={threads:?}: total wall time not metered"
            );
            let parsed =
                RunReport::from_json(&a.telemetry.to_json()).expect("canonical JSON parses back");
            assert_eq!(
                parsed, a.telemetry,
                "threads={threads:?}: JSON round-trip lost information"
            );
        }
    }
}

/// The outer valuation-shard matrix: unsharded, and 1/2/4 shard slots.
const VALUATION_SHARDS: [Option<usize>; 4] = [None, Some(1), Some(2), Some(4)];

fn chains_closure_setup() -> (Verifier, VerifyOptions) {
    let mut v = Verifier::new(chains::composition(3, true, Semantics::default()));
    let db = chains::database(v.composition_mut(), 2);
    (v, fixed_opts(db))
}

/// The closure property: two universal valuations (one per token), so the
/// outer shard scheduler has real work to split.
const CHAINS_CLOSURE_HOLDS: &str = "forall x: G (P1.?hop0(x) -> P0.token(x))";
const CHAINS_CLOSURE_VIOLATED: &str = "forall x: G (P1.?hop0(x) -> false)";

#[test]
fn valuation_shards_agree_across_the_matrix() {
    // {vt1, vt2, vt4} cells over the engine × reduction × representation
    // matrix: the verdict is shard-count-independent, counterexamples
    // replay, and the per-shard dispatch counts sum to the batch.
    use ddws_verifier::StateRepr;
    for (property, expect_holds) in [
        (CHAINS_CLOSURE_HOLDS, true),
        (CHAINS_CLOSURE_VIOLATED, false),
    ] {
        for valuation_threads in VALUATION_SHARDS {
            for threads in [None, Some(2)] {
                for reduction in REDUCTIONS {
                    for state_repr in [StateRepr::Legacy, StateRepr::Compact] {
                        let (mut v, mut opts) = chains_closure_setup();
                        opts.valuation_threads = valuation_threads;
                        opts.threads = threads;
                        opts.reduction = reduction;
                        opts.state_repr = state_repr;
                        let prop = v.parse_property(property).expect("property parses");
                        let report = v.check(&prop, &opts).expect("verification completes");
                        let cell = format!(
                            "vt={valuation_threads:?} threads={threads:?} \
                             reduction={reduction:?} repr={state_repr:?}"
                        );
                        assert_eq!(report.outcome.holds(), expect_holds, "{cell}");
                        assert_eq!(
                            report.shard_valuations.len(),
                            valuation_threads.unwrap_or(1).max(1),
                            "{cell}: one dispatch counter per shard slot"
                        );
                        if expect_holds {
                            // Every valuation was dispatched exactly once.
                            assert_eq!(
                                report.shard_valuations.iter().sum::<u64>(),
                                report.valuations_checked as u64,
                                "{cell}: dispatch counts must sum to the batch"
                            );
                        }
                        if let Outcome::Violated(cex) = &report.outcome {
                            v.replay_counterexample(&prop, cex, &opts)
                                .unwrap_or_else(|e| {
                                    panic!("{cell}: counterexample does not replay: {e}")
                                });
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn valuation_shard_reports_are_byte_identical() {
    // The determinism contract of the shard scheduler's winner rule:
    // verdict, counters, and the whole redacted run report are
    // byte-identical across outer shard counts — a violation or budget
    // stop reports exactly the statistics the sequential valuation loop
    // would have, however many shards raced.
    for (property, expect_holds) in [
        (CHAINS_CLOSURE_HOLDS, true),
        (CHAINS_CLOSURE_VIOLATED, false),
    ] {
        let run = |valuation_threads: Option<usize>| {
            let (mut v, mut opts) = chains_closure_setup();
            opts.valuation_threads = valuation_threads;
            v.check_str(property, &opts)
                .expect("verification completes")
        };
        let baseline = run(None);
        assert_eq!(baseline.outcome.holds(), expect_holds);
        for valuation_threads in [Some(1), Some(2), Some(4)] {
            let report = run(valuation_threads);
            assert_eq!(
                report.outcome.holds(),
                expect_holds,
                "vt={valuation_threads:?}"
            );
            assert_eq!(
                report.stats.states_visited, baseline.stats.states_visited,
                "vt={valuation_threads:?}: traversal counters drifted"
            );
            assert_eq!(
                report.telemetry.redacted().to_json(),
                baseline.telemetry.redacted().to_json(),
                "vt={valuation_threads:?}: redacted report drifted from the \
                 unsharded baseline on {property:?}"
            );
        }
    }
}

#[test]
fn multi_shard_checkpoint_resumes_to_the_verdict() {
    // A budget stop under cooperative sharding (deterministic mode: a
    // virtual clock is injected) freezes *several* in-flight legs — the
    // winner plus the superseded parked shards — and `resume` drains them
    // all to the unfaulted verdict with exact cumulative statistics.
    use ddws_verifier::ManualClock;
    let mut v = Verifier::new(chains::composition(4, true, Semantics::default()));
    let db = chains::database(v.composition_mut(), 4);
    let mut opts = fixed_opts(db);
    opts.valuation_threads = Some(2);
    opts.clock = Some(Arc::new(ManualClock::new(0)));
    opts.max_states = 2000;
    let prop = "forall x: G (P1.?hop0(x) -> P0.token(x))";

    let report = v.check_str(prop, &opts).expect("a budget stop is a report");
    let cp = match report.outcome {
        Outcome::Inconclusive(inc) => {
            assert!(matches!(
                inc.reason,
                AbortReason::StateBudget { max_states: 2000 }
            ));
            inc.checkpoint.expect("budget stops are resumable")
        }
        other => panic!("expected a budget stop, got {other:?}"),
    };
    assert!(
        cp.shard_legs() >= 2,
        "expected the winner plus at least one superseded parked shard, \
         got {} legs",
        cp.shard_legs()
    );

    opts.max_states = 1_000_000;
    let resumed = v.resume(cp, &opts).expect("resume completes");
    assert!(resumed.outcome.holds(), "the chain property holds");
    assert_eq!(resumed.valuations_checked, 4);

    // The unsharded, unsliced baseline agrees on verdict and traversal.
    let mut v2 = Verifier::new(chains::composition(4, true, Semantics::default()));
    let db2 = chains::database(v2.composition_mut(), 4);
    let base_opts = fixed_opts(db2);
    let baseline = v2.check_str(prop, &base_opts).expect("baseline completes");
    assert!(baseline.outcome.holds());
    assert_eq!(
        resumed.stats.states_visited, baseline.stats.states_visited,
        "a multi-leg resume revisits nothing and skips nothing"
    );
}

#[test]
fn budget_abort_still_emits_a_run_report() {
    // A budget abort is an outcome, not an absence of one: the check
    // returns `Ok` with an `Inconclusive` verdict, and the reporter still
    // receives exactly one final `RunReport`, labelled `budget_exceeded`,
    // with the truncated partial counters and the abort object attached.
    let buf = Arc::new(BufferReporter::new());
    let mut v = Verifier::new(chains::composition(3, true, Semantics::default()));
    let db = chains::database(v.composition_mut(), 2);
    let mut opts = fixed_opts(db);
    opts.max_states = 60;
    opts.reporter = ReporterHandle::new(buf.clone());
    let report = v
        .check_str(&chains::prop_integrity(3), &opts)
        .expect("a budget stop is a report, not an error");
    match &report.outcome {
        Outcome::Inconclusive(inc) => {
            assert!(matches!(
                inc.reason,
                AbortReason::StateBudget { max_states: 60 }
            ));
            assert!(inc.checkpoint.is_some(), "budget stops are resumable");
        }
        other => panic!("expected an inconclusive outcome, got {other:?}"),
    }
    let reports = buf.take_reports();
    assert_eq!(reports.len(), 1, "exactly one final report per run");
    let r = &reports[0];
    assert_eq!(r.entry_point, "check");
    assert_eq!(r.outcome, "budget_exceeded");
    assert!(r.counters.truncated, "partial counters must be flagged");
    assert!(r.counters.states_visited > 60);
    let abort = r.abort.as_ref().expect("abort object attached");
    assert_eq!(abort.reason, "budget_exceeded");
    assert_eq!(abort.budget, 60);
    assert_eq!(abort.spent, r.counters.states_visited);
    assert!(abort.resumable);
}

#[test]
fn budget_exceeded_at_every_thread_count() {
    // The 3-peer chain over 2 tokens reaches far more than 60 product
    // states, so a 60-state budget must trip — promptly, on every engine,
    // with overshoot at most one state per worker and partial statistics
    // flagged as truncated.
    const BUDGET: u64 = 60;
    for threads in ENGINES {
        let mut v = Verifier::new(chains::composition(3, true, Semantics::default()));
        let db = chains::database(v.composition_mut(), 2);
        let mut opts = fixed_opts(db);
        opts.max_states = BUDGET;
        opts.threads = threads;
        let report = v
            .check_str(&chains::prop_integrity(3), &opts)
            .expect("a budget stop is a report, not an error");
        match &report.outcome {
            Outcome::Inconclusive(inc) => {
                assert!(
                    matches!(inc.reason, AbortReason::StateBudget { max_states: BUDGET }),
                    "threads={threads:?}: wrong reason {:?}",
                    inc.reason
                );
                let workers = threads.unwrap_or(1) as u64;
                let visited = report.stats.states_visited;
                assert!(visited > BUDGET, "threads={threads:?}");
                assert!(
                    visited <= BUDGET + workers + 1,
                    "threads={threads:?}: overshoot too large ({visited} states)"
                );
                assert!(
                    report.stats.truncated,
                    "threads={threads:?}: stats not flagged"
                );
                let cp = inc
                    .checkpoint
                    .as_ref()
                    .expect("budget stops carry a checkpoint");
                assert_eq!(cp.states_visited(), visited, "threads={threads:?}");
            }
            other => panic!("threads={threads:?}: expected Inconclusive, got {other:?}"),
        }
    }
}
