//! Integration tests on the paper's running example (Figure 1,
//! Example 2.2): the full four-peer bank-loan composition driven through
//! the verifier.

use ddws::scenarios::bank_loan;
use ddws_model::Semantics;
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{DatabaseMode, Outcome, Verifier, VerifyOptions};

/// Practical semantics for tests: skipping empty nested messages keeps the
/// nested queues from filling with vacuous messages (the paper-faithful
/// default enqueues one per firing; the boundary demos exercise that).
fn sem() -> Semantics {
    Semantics {
        nested_send_skips_empty: true,
        ..Semantics::default()
    }
}

/// A single-customer database without credit history keeps the test state
/// space small: the rating pipeline runs, the manager path stays idle.
fn small_db(v: &mut Verifier) -> Instance {
    let comp = v.composition_mut();
    let mut names = |n: &str| comp.symbols.intern(n);
    let c1 = names("c1");
    let s1 = names("s1");
    let alice = names("alice");
    let small = names("small");
    let fair = names("fair");
    let mut db = Instance::empty(&comp.voc);
    let ins = |db: &mut Instance, rel: &str, t: &[ddws_relational::Value]| {
        let id = comp.voc.lookup(rel).unwrap();
        db.relation_mut(id).insert(Tuple::from(t));
    };
    ins(&mut db, "A.wants", &[c1, small]);
    ins(&mut db, "O.customer", &[c1, s1, alice]);
    ins(&mut db, "CR.creditRating", &[s1, fair]);
    db
}

fn opts(db: Instance) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        max_states: 2_000_000,
        ..VerifyOptions::default()
    }
}

#[test]
fn composition_is_input_bounded() {
    let comp = bank_loan::composition(true, sem());
    comp.check_input_bounded(Default::default())
        .expect("Example 2.2 is input-bounded (Example 3.3)");
}

#[test]
fn ratings_reflect_the_agency_database() {
    let mut v = Verifier::new(bank_loan::composition(true, sem()));
    let db = small_db(&mut v);
    let report = v
        .check_str(bank_loan::PROP_RATINGS_REFLECT_DB, &opts(db))
        .unwrap();
    assert!(report.outcome.holds(), "stats: {:?}", report.stats);
}

#[test]
fn the_pipeline_delivers_a_rating() {
    // "No rating is ever received" must be violated; its counterexample
    // exercises the A → O → CR → O message pipeline.
    let mut v = Verifier::new(bank_loan::composition(true, sem()));
    let db = small_db(&mut v);
    let report = v
        .check_str(bank_loan::PROP_NO_RATING_EVER, &opts(db))
        .unwrap();
    match report.outcome {
        Outcome::Violated(cex) => {
            // The run must include CR answering. (The `received_rating`
            // flag is masked away — the property does not observe it — so
            // witness the delivery through its effects: either a rating
            // message in the queue or the `awaitsHist` state it produces.)
            let (rating, _) = v.composition().channel_by_name("rating").unwrap();
            let awaits = v.composition().voc.lookup("O.awaitsHist").unwrap();
            let touched = cex.prefix.iter().chain(cex.cycle.iter()).any(|s| {
                !s.config.queues[rating.index()].is_empty()
                    || !s.config.rel.relation(awaits).is_empty()
            });
            assert!(
                touched,
                "counterexample should deliver a rating\n{}",
                cex.display(v.composition())
            );
        }
        other => panic!("expected a violation, got {other:?}"),
    }
}

#[test]
fn applications_persist() {
    // `application` has no deletion rule: two closure variables, holds.
    let mut v = Verifier::new(bank_loan::composition(true, sem()));
    let db = small_db(&mut v);
    let report = v
        .check_str(
            "forall id, l: G (O.application(id, l) -> X O.application(id, l))",
            &opts(db),
        )
        .unwrap();
    assert!(
        report.outcome.holds(),
        "valuations: {}",
        report.valuations_checked
    );
}

#[test]
fn unfair_scheduling_can_starve_recording() {
    // A received application is eventually recorded — violated: the
    // scheduler may never run O again (serialized runs are unfair).
    let mut v = Verifier::new(bank_loan::composition(true, sem()));
    let db = small_db(&mut v);
    let report = v
        .check_str(
            "forall id, l: G (O.?apply(id, l) -> F O.application(id, l))",
            &opts(db),
        )
        .unwrap();
    assert!(!report.outcome.holds());
}

#[test]
fn bank_policy_property_verifies() {
    // The second property of Example 3.2: approval letters only after an
    // excellent rating or a manager approval. With the small database (fair
    // rating, no manager directory) no approval letter can be produced, so
    // the `B` ("before") obligation holds vacuously — the point here is a
    // regression net over the B-operator translation and the property text.
    let mut v = Verifier::new(bank_loan::composition(true, sem()));
    let db = small_db(&mut v);
    let report = v
        .check_str(bank_loan::PROP_APPROVALS_JUSTIFIED, &opts(db))
        .unwrap();
    assert!(
        report.outcome.holds(),
        "no approval path exists in the small database; valuations: {}",
        report.valuations_checked
    );
}
