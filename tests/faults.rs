//! Deterministic fault-injection swarm (DESIGN.md §3.10).
//!
//! Each case draws a random small composition, one seeded fault plan
//! (panic at the Nth expansion, cancel at the Nth, or an already-expired
//! deadline), and one point of the engine × reduction matrix
//! `{seq, par1, par2, par4} × {Full, Ample}`, then drives the
//! *production* abort paths and asserts the robustness contract
//! ([`common::assert_fault_contract`]): the run terminates, the process
//! survives, exactly one schema-valid `RunReport` is emitted, merged
//! counters stay coherent, injected panics surface as typed errors, and
//! resuming a captured checkpoint without the fault agrees with an
//! unfaulted baseline run.
//!
//! On failure the harness prints the failing sub-seed; pin it in
//! tests/regressions.rs (`PINNED_FAULTS`) by feeding it to
//! `XorShift::new` directly.

mod common;

use ddws_testkit::{gen, seed_from};

#[test]
fn fault_swarm_is_robust_across_the_engine_matrix() {
    // Injected panics are expected noise here; keep the test output to
    // the genuine failures.
    common::silence_injected_panics();
    gen::cases(240, seed_from("fault_swarm"), common::assert_fault_case);
}
