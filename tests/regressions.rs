//! Pinned regression seeds for the differential swarm.
//!
//! When `tests/swarm.rs` fails it prints the failing case's *sub-seed*.
//! Add that value to `PINNED` here — it replays the exact same case on
//! every future run, independent of the swarm's own seed or case count.
//!
//! Note the replay mechanics: a printed sub-seed must be fed to
//! `XorShift::new` directly. Wrapping it in `gen::cases(1, sub, ..)` would
//! derive *another* sub-seed from it and draw a different case.

mod common;

use ddws_testkit::rng::XorShift;

/// Sub-seeds pinned from past swarm runs (plus a few hand-picked values
/// so the harness itself is always exercised).
const PINNED: &[u64] = &[1, 42, 0x9e37_79b9_7f4a_7c15];

#[test]
fn pinned_swarm_seeds_stay_green() {
    for &seed in PINNED {
        let mut rng = XorShift::new(seed);
        common::assert_case_agrees(&mut rng);
    }
}

/// Sub-seeds pinned for the compiled-vs-interpreted rule-evaluation
/// differential (`tests/swarm.rs::compiled_and_interpreted_agree_*`). The
/// two values replay cases that exercise both verdicts, keeping the
/// compiled engine's counterexample-replay path covered forever.
const PINNED_COMPILED: &[u64] = &[7, 11];

#[test]
fn pinned_compiled_seeds_stay_green() {
    for &seed in PINNED_COMPILED {
        let mut rng = XorShift::new(seed);
        common::assert_compiled_agrees(&mut rng);
    }
}

/// Sub-seeds pinned for the compact-vs-legacy state-representation
/// differential (`tests/swarm.rs::compact_and_legacy_representations_*`).
/// Seed 3's case holds (the whole product graph is explored under both
/// representations, pinning `states_expanded` equality on complete
/// searches); seed 4's case is violated (the compact-found counterexample
/// must replay under the legacy interpreted stepper). Together they keep
/// both verdict paths of `common::repr_agrees` covered forever.
const PINNED_REPR: &[u64] = &[3, 4];

#[test]
fn pinned_repr_seeds_stay_green() {
    for &seed in PINNED_REPR {
        let mut rng = XorShift::new(seed);
        common::assert_repr_agrees(&mut rng);
    }
}

/// Sub-seeds pinned from the fault-injection swarm (`tests/faults.rs`).
/// The first replays an injected worker panic inside the two-worker
/// parallel engine under `Reduction::Full` (panic isolation: typed error,
/// one report, survivors drain); the second replays an injected
/// cancellation under `Reduction::Ample` whose checkpoint is resumed to
/// the unfaulted verdict.
const PINNED_FAULTS: &[u64] = &[0x19a9_236d_56a4_7241, 0xdd3a_2ffa_580f_7a17];

#[test]
fn pinned_fault_seeds_stay_green() {
    common::silence_injected_panics();
    for &seed in PINNED_FAULTS {
        let mut rng = XorShift::new(seed);
        common::assert_fault_case(&mut rng);
    }
}

/// Seeds pinned from the whole-system simulation swarm (`tests/sim.rs`),
/// fed to `ddws_sim::run_seed` directly. Each guards a hard-won schedule
/// shape the swarm would only rediscover by luck:
///
/// * `SIM_CRASH_DURING_RESUME` — a job is preempted by the virtual-clock
///   deadline, resumes its checkpoint, and the planned crash then lands
///   *inside the resumed slice*: the checkpoint is discarded, the job
///   restarts from scratch, and its verdict must still agree with the
///   unfaulted oracle (the checkpoint-loss path of §3.11).
/// * `SIM_LOSS_HEAVY` — the perturbed channel walk fires the in-transit
///   loss perturbation at least four times, pinning T3.4's downward
///   closure under sustained message loss.
///
/// Both must stay violation-free and replay byte-identically.
const SIM_CRASH_DURING_RESUME: u64 = 62;
const SIM_LOSS_HEAVY: u64 = 27;

#[test]
fn pinned_sim_seeds_stay_green() {
    use ddws_sim::{run_seed, SimEvent, SimOptions};
    common::silence_injected_panics();
    let opts = SimOptions::default();

    for (seed, what) in [
        (SIM_CRASH_DURING_RESUME, "crash-during-resume"),
        (SIM_LOSS_HEAVY, "loss-heavy"),
    ] {
        let run = run_seed(seed, &opts);
        assert!(
            run.violations.is_empty(),
            "pinned sim seed {seed} ({what}) now violates: {:?}",
            run.violations
        );
        let replay = run_seed(seed, &opts);
        assert_eq!(
            run.canonical_trace(),
            replay.canonical_trace(),
            "pinned sim seed {seed} ({what}) no longer replays deterministically"
        );
    }

    // The pinned schedule shapes must persist, or the pins guard nothing.
    let crashy = run_seed(SIM_CRASH_DURING_RESUME, &opts);
    let crash_in_resumed_slice = crashy.events.iter().any(|e| {
        let SimEvent::CrashInjected { job, slice } = e else {
            return false;
        };
        crashy
            .events
            .iter()
            .any(|r| matches!(r, SimEvent::Resumed { job: j, slice: s } if j == job && s == slice))
    });
    assert!(
        crash_in_resumed_slice,
        "seed {SIM_CRASH_DURING_RESUME} no longer crashes inside a resumed slice"
    );

    let lossy = run_seed(SIM_LOSS_HEAVY, &opts);
    let losses = lossy
        .events
        .iter()
        .filter(|e| matches!(e, SimEvent::WalkStep { perturbation, .. } if *perturbation == "loss"))
        .count();
    assert!(
        losses >= 4,
        "seed {SIM_LOSS_HEAVY} walk lost only {losses} messages (pinned ≥ 4)"
    );
}

/// A pinned sim seed exercising the compact-representation checkpoint
/// path end to end: one of its jobs draws `StateRepr::Compact` from its
/// walk seed's parity bit, is preempted by the virtual-clock deadline,
/// resumes its checkpoint (interned states serialized and restored across
/// the slice boundary), and still reaches a conclusive verdict that the
/// legacy-representation oracle confirms.
const SIM_COMPACT_RESUME: u64 = 3;

#[test]
fn pinned_compact_resume_sim_seed_stays_green() {
    use ddws_sim::{run_seed, SimEvent, SimOptions};
    use ddws_verifier::StateRepr;
    common::silence_injected_panics();
    let opts = SimOptions::default();
    let run = run_seed(SIM_COMPACT_RESUME, &opts);
    assert!(
        run.violations.is_empty(),
        "pinned sim seed {SIM_COMPACT_RESUME} (compact-resume) now violates: {:?}",
        run.violations
    );
    let replay = run_seed(SIM_COMPACT_RESUME, &opts);
    assert_eq!(
        run.canonical_trace(),
        replay.canonical_trace(),
        "pinned sim seed {SIM_COMPACT_RESUME} no longer replays deterministically"
    );
    // The pinned shape: a compact-representation job that resumed a
    // checkpoint and still concluded (the legacy oracle agreeing is part
    // of the violation-free check above).
    let compact_resumed = run.jobs.iter().enumerate().any(|(j, job)| {
        job.state_repr == StateRepr::Compact
            && (job.verdict == "holds" || job.verdict == "violated")
            && run
                .events
                .iter()
                .any(|e| matches!(e, SimEvent::Resumed { job: jj, .. } if *jj == j))
    });
    assert!(
        compact_resumed,
        "seed {SIM_COMPACT_RESUME} no longer resumes a compact-representation job"
    );
}

/// A pinned sim seed exercising the multi-shard checkpoint path end to
/// end: one of its jobs draws `valuation_threads: Some(3)` from its walk
/// seed, is preempted mid-closure (the cooperative scheduler parks
/// several in-flight valuation legs into one checkpoint), resumes across
/// the slice boundary, and still reaches a *violated* verdict that the
/// unsharded, unfaulted oracle confirms.
const SIM_MULTI_SHARD_RESUME: u64 = 44;

#[test]
fn pinned_multi_shard_resume_sim_seed_stays_green() {
    use ddws_sim::{run_seed, SimEvent, SimOptions};
    common::silence_injected_panics();
    let opts = SimOptions::default();
    let run = run_seed(SIM_MULTI_SHARD_RESUME, &opts);
    assert!(
        run.violations.is_empty(),
        "pinned sim seed {SIM_MULTI_SHARD_RESUME} (multi-shard-resume) now violates: {:?}",
        run.violations
    );
    let replay = run_seed(SIM_MULTI_SHARD_RESUME, &opts);
    assert_eq!(
        run.canonical_trace(),
        replay.canonical_trace(),
        "pinned sim seed {SIM_MULTI_SHARD_RESUME} no longer replays deterministically"
    );
    // The pinned shape: a sharded job (outer valuation pool ≥ 2) that
    // resumed a checkpoint and still concluded — here with a violation,
    // so the first-violation cancel, the legged checkpoint, and the
    // counterexample all survive the slice boundary (the oracle agreeing
    // is part of the violation-free check above).
    let sharded_resumed = run.jobs.iter().enumerate().any(|(j, job)| {
        job.valuation_threads.is_some_and(|n| n >= 2)
            && job.verdict == "violated"
            && run
                .events
                .iter()
                .any(|e| matches!(e, SimEvent::Resumed { job: jj, .. } if *jj == j))
    });
    assert!(
        sharded_resumed,
        "seed {SIM_MULTI_SHARD_RESUME} no longer resumes a multi-shard job to a violation"
    );
}

/// A pinned sub-seed whose case is violated under the sequential full
/// search and shrinks substantially: the 14-element spec (two channels, a
/// second relay's worth of rules, two database rows) minimizes to the
/// 5-element violating core — two relays, the property's channel with its
/// send rule, and the one database row that lets the sender fire.
const SHRINKABLE: u64 = 15;
const SHRUNK_SIZE: usize = 5;

#[test]
fn pinned_shrinkable_seed_minimizes_to_its_core() {
    let mut rng = XorShift::new(SHRINKABLE);
    let spec = ddws_testkit::compgen::spec(&mut rng);
    let case = spec.build().expect("pinned spec builds");
    assert!(
        common::violates_seq_full(&case),
        "pinned seed no longer violates `{}`",
        case.property
    );
    let min = ddws_testkit::compgen::minimize(&spec, common::violates_seq_full);
    assert!(min.size() < spec.size(), "minimizer made no progress");
    assert_eq!(min.size(), SHRUNK_SIZE, "minimized spec drifted:\n{min}");
    let min_case = min.build().expect("minimized spec builds");
    assert!(
        common::violates_seq_full(&min_case),
        "minimized spec must still violate"
    );
}

/// Pinned seeds for the service swarm (`tests/server_sim.rs`). Unlike
/// the sub-seed pins above, these are fed to
/// [`ddws_sim::run_service_seed`] whole — the seed fixes the entire
/// schedule (job draws, wire interleaving, cancellation timing), so the
/// replay needs no further derivation.
///
/// `SERVER_CANCEL_MID_RUN`: the planned `cancel_job` lands on job 4
/// after three executed slices, so the cancel hits a *parked*
/// checkpoint — the service must discard it, answer `cancelled` on the
/// wire, and leave every other job's verdict oracle-exact.
const SERVER_CANCEL_MID_RUN: u64 = 6;

/// `SERVER_VIOLATION_ACROSS_SLICES`: job 1 parks repeatedly and resumes
/// across four quanta before reaching `violated`; the counterexample
/// digest served over the wire must equal the digest of the direct
/// one-shot oracle run (enforced inside `run_service_seed`, pinned here
/// by shape so the resume-to-violation path stays covered).
const SERVER_VIOLATION_ACROSS_SLICES: u64 = 21;

#[test]
fn pinned_server_cancel_seed_stays_green() {
    let opts = ddws_sim::ServiceSimOptions {
        quantum_states: 64,
        budget: 4_096,
        ..ddws_sim::ServiceSimOptions::default()
    };
    let run = ddws_sim::run_service_seed(SERVER_CANCEL_MID_RUN, &opts);
    assert_eq!(
        run.violations,
        Vec::<String>::new(),
        "seed {SERVER_CANCEL_MID_RUN} violated"
    );
    let cancelled: Vec<_> = run.jobs.iter().filter(|j| j.cancelled).collect();
    assert_eq!(cancelled.len(), 1, "exactly one planned cancel");
    let job = cancelled[0];
    assert_eq!(job.verdict.as_deref(), Some("cancelled"));
    assert!(
        job.slices >= 1,
        "cancel no longer lands mid-run (0 slices executed)"
    );
    assert!(
        job.discarded_checkpoint,
        "cancel no longer discards a parked checkpoint"
    );
    assert!(job.counterexample.is_none());
}

#[test]
fn pinned_server_violation_seed_stays_green() {
    let opts = ddws_sim::ServiceSimOptions {
        quantum_states: 48,
        budget: 20_000,
        cancel_one: false,
        ..ddws_sim::ServiceSimOptions::default()
    };
    let run = ddws_sim::run_service_seed(SERVER_VIOLATION_ACROSS_SLICES, &opts);
    assert_eq!(
        run.violations,
        Vec::<String>::new(),
        "seed {SERVER_VIOLATION_ACROSS_SLICES} violated"
    );
    let job = run
        .jobs
        .iter()
        .find(|j| j.verdict.as_deref() == Some("violated") && j.slices >= 2)
        .expect("seed no longer resumes a parked job to a violation");
    // Oracle agreement is recorded inside the run; pin the digest shape
    // too so a silent re-draw of the corpus can't hollow the test out.
    let cex = job
        .counterexample
        .as_ref()
        .expect("violated job has a digest");
    assert_eq!(job.oracle_counterexample.as_ref(), Some(cex));
    assert!(cex.cycle_len > 0, "lasso digest lost its cycle");
}

/// Pinned chaos seeds for the fault-tolerant service (`tests/server_sim.rs`
/// chaos swarm), fed to [`ddws_sim::run_service_seed`] whole.
///
/// `SERVER_CRASH_REDISPATCH`: the seeded injector panics job 5's worker
/// mid-slice twice; the supervisor restores the pre-slice checkpoint and
/// requeues both times, and the job still reaches `violated` across four
/// slices with a counterexample digest the one-shot oracle confirms — a
/// crash loses a quantum, never the job, and never the verdict.
const SERVER_CRASH_REDISPATCH: u64 = 12;

/// `SERVER_DUP_SUBMIT_DEDUP`: a duplicate-only wire delivers at least one
/// `submit_job` frame twice. The `submit_token` dedup window collapses
/// the copies onto one job — the second delivery is acked with the
/// *original* id (the `dedup` event in the canonical log), exactly one
/// job per logical submission runs, and every verdict stays oracle-exact.
const SERVER_DUP_SUBMIT_DEDUP: u64 = 9;

#[test]
fn pinned_server_crash_seed_redispatches_to_the_oracle_verdict() {
    common::silence_injected_panics();
    let opts = ddws_sim::ServiceSimOptions {
        quantum_states: 64,
        budget: 8_192,
        cancel_one: false,
        crash_in: 6,
        crash_quarantine: 10,
        ..ddws_sim::ServiceSimOptions::default()
    };
    let run = ddws_sim::run_service_seed(SERVER_CRASH_REDISPATCH, &opts);
    assert_eq!(
        run.violations,
        Vec::<String>::new(),
        "seed {SERVER_CRASH_REDISPATCH} violated"
    );
    assert!(
        run.crash_recoveries >= 2,
        "seed {SERVER_CRASH_REDISPATCH} no longer crashes enough workers \
         ({} recoveries)",
        run.crash_recoveries
    );
    // The pinned shape: a job that crashed mid-slice, re-dispatched from
    // its checkpoint, and still served the oracle-confirmed violation.
    let job = run
        .jobs
        .iter()
        .find(|j| j.verdict.as_deref() == Some("violated") && j.crash_recoveries >= 1)
        .expect("seed no longer re-dispatches a crashed job to a violation");
    assert_eq!(job.oracle.as_deref(), Some("violated"));
    assert_eq!(
        job.oracle_counterexample.as_ref(),
        job.counterexample.as_ref().map(Some).unwrap_or(None),
        "re-dispatched counterexample must stay oracle-exact"
    );
    assert!(job.counterexample.is_some(), "violated job has a digest");
    assert!(run.trace.contains("crashed (recovery"));
    // And the chaotic schedule replays byte-identically.
    let replay = ddws_sim::run_service_seed(SERVER_CRASH_REDISPATCH, &opts);
    assert_eq!(run.trace, replay.trace);
    assert_eq!(run.redacted_reports, replay.redacted_reports);
}

#[test]
fn pinned_server_duplicate_submit_seed_collapses_onto_one_job() {
    let opts = ddws_sim::ServiceSimOptions {
        chaos: ddws_testkit::faults::FrameChaos {
            corrupt_in: 0,
            drop_in: 0,
            dup_in: 4,
            reorder_in: 0,
        },
        ..ddws_sim::ServiceSimOptions::default()
    };
    let run = ddws_sim::run_service_seed(SERVER_DUP_SUBMIT_DEDUP, &opts);
    assert_eq!(
        run.violations,
        Vec::<String>::new(),
        "seed {SERVER_DUP_SUBMIT_DEDUP} violated"
    );
    assert!(run.wire_faults > 0, "the dup wire injected nothing");
    // The pinned shape: at least one duplicated submit_job was acked a
    // second time with the original id instead of spawning a twin job.
    let dedup_acks = run
        .trace
        .lines()
        .filter(|l| l.contains("-> dedup job="))
        .count();
    assert!(
        dedup_acks >= 1,
        "seed {SERVER_DUP_SUBMIT_DEDUP} no longer duplicates a submit_job frame"
    );
    // One job per logical submission — the duplicates created nothing.
    assert_eq!(
        run.jobs.len(),
        6,
        "duplicate submissions spawned extra jobs"
    );
    let mut ids: Vec<u64> = run.jobs.iter().map(|j| j.job).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 6, "two logical submissions share a job id");
}
