//! Pinned regression seeds for the differential swarm.
//!
//! When `tests/swarm.rs` fails it prints the failing case's *sub-seed*.
//! Add that value to `PINNED` here — it replays the exact same case on
//! every future run, independent of the swarm's own seed or case count.
//!
//! Note the replay mechanics: a printed sub-seed must be fed to
//! `XorShift::new` directly. Wrapping it in `gen::cases(1, sub, ..)` would
//! derive *another* sub-seed from it and draw a different case.

mod common;

use ddws_testkit::rng::XorShift;

/// Sub-seeds pinned from past swarm runs (plus a few hand-picked values
/// so the harness itself is always exercised).
const PINNED: &[u64] = &[1, 42, 0x9e37_79b9_7f4a_7c15];

#[test]
fn pinned_swarm_seeds_stay_green() {
    for &seed in PINNED {
        let mut rng = XorShift::new(seed);
        common::assert_case_agrees(&mut rng);
    }
}

/// Sub-seeds pinned for the compiled-vs-interpreted rule-evaluation
/// differential (`tests/swarm.rs::compiled_and_interpreted_agree_*`). The
/// two values replay cases that exercise both verdicts, keeping the
/// compiled engine's counterexample-replay path covered forever.
const PINNED_COMPILED: &[u64] = &[7, 11];

#[test]
fn pinned_compiled_seeds_stay_green() {
    for &seed in PINNED_COMPILED {
        let mut rng = XorShift::new(seed);
        common::assert_compiled_agrees(&mut rng);
    }
}
