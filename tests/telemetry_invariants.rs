//! Metamorphic invariants over the telemetry counters (DESIGN.md §3.9).
//!
//! Every completed verification must satisfy, regardless of engine,
//! reduction, or rule-evaluation mode:
//!
//! * `rule_cache_hits + rule_cache_misses == rule_evals` — every metered
//!   evaluation books exactly one cache outcome;
//! * under `Reduction::Full`, `ample_hits == full_expansions == 0`;
//! * under an *active* ample reduction, `ample_hits + full_expansions ==
//!   states_expanded` — every expansion is classified (when the reduction
//!   gates itself off, e.g. for an `X`-shaped property, both sides are 0);
//! * the `RunReport` counters equal `Counters::from_stats(&report.stats)`
//!   — the report is the stats, not a second bookkeeping path;
//! * sharded-merge totals are exact: the parallel engine's worker-local
//!   counters, merged at join, give the same `states_visited` /
//!   `states_expanded` / `transitions_explored` at every worker count
//!   (the full exploration is schedule-independent), and the same
//!   `states_visited` as the sequential engine on `Holds` verdicts;
//! * on a sequential both-`Holds` pair, the ample search visits no more
//!   states than the full search.
//!
//! Exercised over the 200-case random swarm and the scenario library.

mod common;

use ddws::scenarios::{bank_loan, chains, ecommerce, travel};
use ddws_model::{builder::ENV, CompositionBuilder, QueueKind, Semantics};
use ddws_protocol::{automata_shapes, DataAgnosticProtocol, DataAwareProtocol, Observer};
use ddws_relational::{Instance, Tuple};
use ddws_telemetry::validate_run_report;
use ddws_testkit::{compgen, gen, seed_from};
use ddws_verifier::{
    BufferReporter, CancelToken, Counters, DatabaseMode, Outcome, Reduction, Report,
    ReporterHandle, RunReport, StateRepr, Verifier, VerifyOptions,
};
use std::sync::Arc;
use std::time::Duration;

fn run_case(case: &compgen::Case, threads: Option<usize>, reduction: Reduction) -> Option<Report> {
    run_case_sharded(case, threads, None, reduction)
}

fn run_case_sharded(
    case: &compgen::Case,
    threads: Option<usize>,
    valuation_threads: Option<usize>,
    reduction: Reduction,
) -> Option<Report> {
    let mut v = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: common::SWARM_BUDGET,
        threads,
        valuation_threads,
        reduction,
        ..VerifyOptions::default()
    };
    match v.check_str(&case.property, &opts) {
        Ok(r) if r.outcome.is_inconclusive() => None,
        Ok(r) => Some(r),
        Err(e) => panic!("unverifiable case `{}`: {e}", case.property),
    }
}

/// The per-run invariants every completed check must satisfy.
fn assert_run_invariants(report: &Report, reduction: Reduction, label: &str) {
    let c = &report.telemetry.counters;
    assert_eq!(
        *c,
        Counters::from_stats(&report.stats),
        "{label}: RunReport counters diverge from Report stats"
    );
    assert!(!c.truncated, "{label}: completed run flagged truncated");
    assert_eq!(
        c.rule_cache_hits + c.rule_cache_misses,
        c.rule_evals,
        "{label}: every metered rule evaluation books exactly one cache outcome"
    );
    match reduction {
        Reduction::Full => {
            assert_eq!(c.ample_hits, 0, "{label}: full search never reduces");
            assert_eq!(
                c.full_expansions, 0,
                "{label}: full search never classifies"
            );
        }
        Reduction::Ample => {
            if c.ample_hits + c.full_expansions > 0 {
                assert_eq!(
                    c.ample_hits + c.full_expansions,
                    c.states_expanded,
                    "{label}: active reduction must classify every expansion"
                );
            }
        }
    }
    assert_eq!(report.telemetry.entry_point, "check", "{label}");
    assert_eq!(
        report.telemetry.valuations_checked as usize, report.valuations_checked,
        "{label}"
    );
    assert_eq!(
        report.telemetry.domain_size as usize,
        report.domain.len(),
        "{label}"
    );
}

#[test]
fn stats_invariants_hold_on_200_swarm_cases() {
    gen::cases(200, seed_from("telemetry_invariants"), |rng| {
        let case = compgen::case(rng);

        let seq_full = run_case(&case, None, Reduction::Full);
        let seq_ample = run_case(&case, None, Reduction::Ample);
        let par_full: Vec<Option<Report>> = [Some(1), Some(2), Some(4)]
            .into_iter()
            .map(|t| run_case(&case, t, Reduction::Full))
            .collect();
        let par2_ample = run_case(&case, Some(2), Reduction::Ample);
        let vt2_full = run_case_sharded(&case, None, Some(2), Reduction::Full);

        let labelled = [
            ("seq/full", Reduction::Full, &seq_full),
            ("seq/ample", Reduction::Ample, &seq_ample),
            ("par1/full", Reduction::Full, &par_full[0]),
            ("par2/full", Reduction::Full, &par_full[1]),
            ("par4/full", Reduction::Full, &par_full[2]),
            ("par2/ample", Reduction::Ample, &par2_ample),
            ("vt2/full", Reduction::Full, &vt2_full),
        ];
        for (label, reduction, report) in labelled {
            if let Some(r) = report {
                assert_run_invariants(r, reduction, &format!("{label} `{}`", case.property));
            }
        }

        // Sharded-merge exactness: the parallel engine always explores the
        // full reachable product (the lasso analysis runs after the
        // exploration), so at any worker count the merged totals must be
        // identical — scheduling moves work between shards, never creates
        // or loses it.
        let completed_par: Vec<&Report> = par_full.iter().flatten().collect();
        for pair in completed_par.windows(2) {
            let (a, b) = (&pair[0].stats, &pair[1].stats);
            assert_eq!(a.states_visited, b.states_visited, "`{}`", case.property);
            assert_eq!(a.states_expanded, b.states_expanded, "`{}`", case.property);
            assert_eq!(
                a.transitions_explored, b.transitions_explored,
                "`{}`",
                case.property
            );
        }

        // Outer sharding moves valuations between workers, never work
        // between searches: with the same (sequential) inner engine, the
        // sharded closure's merged traversal counters must equal the
        // unsharded loop's exactly — on `Holds` because every valuation
        // runs to completion either way, and on `Violated` because the
        // deterministic winner rule books the same prefix-plus-winner
        // stats at any shard count.
        if let (Some(sf), Some(vt)) = (&seq_full, &vt2_full) {
            assert_eq!(
                sf.outcome.holds(),
                vt.outcome.holds(),
                "sharded closure verdict diverges on `{}`",
                case.property
            );
            assert_eq!(
                (sf.stats.states_visited, sf.stats.transitions_explored),
                (vt.stats.states_visited, vt.stats.transitions_explored),
                "sharded closure traversal diverges on `{}`",
                case.property
            );
        }

        // On `Holds` the sequential engine also explores everything, so its
        // visited count must equal the parallel engines'.
        if let Some(sf) = &seq_full {
            if sf.outcome.holds() {
                for pf in &completed_par {
                    assert_eq!(
                        sf.stats.states_visited, pf.stats.states_visited,
                        "sharded merge diverges from the sequential total on `{}`",
                        case.property
                    );
                }
            }
            // Reduction soundness, quantitatively: on a both-`Holds` pair
            // the ample search explores a subgraph.
            if let Some(sa) = &seq_ample {
                if sf.outcome.holds() && sa.outcome.holds() {
                    assert!(
                        sa.stats.states_visited <= sf.stats.states_visited,
                        "ample visited more states than full on `{}` ({} > {})",
                        case.property,
                        sa.stats.states_visited,
                        sf.stats.states_visited
                    );
                }
            }
        }
    });
}

fn run_case_repr(
    case: &compgen::Case,
    threads: Option<usize>,
    reduction: Reduction,
    state_repr: StateRepr,
) -> Option<Report> {
    let mut v = Verifier::new(case.composition.clone());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(case.database.clone()),
        fresh_values: Some(1),
        max_states: common::SWARM_BUDGET,
        threads,
        reduction,
        state_repr,
        ..VerifyOptions::default()
    };
    match v.check_str(&case.property, &opts) {
        Ok(r) if r.outcome.is_inconclusive() => None,
        Ok(r) => Some(r),
        Err(e) => panic!("unverifiable case `{}`: {e}", case.property),
    }
}

/// The interning meters' invariants (DESIGN.md §3.12):
///
/// * `intern_hits + intern_misses == intern_calls` on every compact run —
///   each intern call books exactly one table outcome — and all three are
///   zero under `StateRepr::Legacy`;
/// * the interner's sharded merge is exact where the representation is
///   deterministic: each distinct extension or configuration books exactly
///   one miss regardless of scheduling (a concurrent intern race books the
///   loser a *hit*), so under `Reduction::Full` — where the explored
///   graph is worker-count-independent — `intern_misses` is identical
///   across par1 / par2 / par4. (`intern_calls`/`intern_hits` may differ
///   by benign step-cache races: two workers both computing a not-yet-
///   cached expansion both intern its successors.);
/// * the representation never leaks into reporting: on deterministic
///   (sequential) runs the `redacted()` run reports of a compact and a
///   legacy check are byte-identical — interned states must change how
///   the search stores configurations, not what it reports.
#[test]
fn interner_counters_are_coherent_and_invisible_to_reports() {
    gen::cases(60, seed_from("telemetry_intern_invariants"), |rng| {
        let case = compgen::case(rng);

        let compact_par: Vec<Option<Report>> = [Some(1), Some(2), Some(4)]
            .into_iter()
            .map(|t| run_case_repr(&case, t, Reduction::Full, StateRepr::Compact))
            .collect();
        let compact_seq = run_case_repr(&case, None, Reduction::Full, StateRepr::Compact);
        let legacy_seq = run_case_repr(&case, None, Reduction::Full, StateRepr::Legacy);

        for (label, report) in [
            ("seq", &compact_seq),
            ("par1", &compact_par[0]),
            ("par2", &compact_par[1]),
            ("par4", &compact_par[2]),
        ] {
            if let Some(r) = report {
                assert_eq!(
                    r.stats.intern_hits + r.stats.intern_misses,
                    r.stats.intern_calls,
                    "{label}: every intern call books exactly one outcome on `{}`",
                    case.property
                );
                // A zero-valuation check never boots a search; any actual
                // exploration must have interned its states.
                if r.stats.states_visited > 0 {
                    assert!(
                        r.stats.intern_calls > 0,
                        "{label}: a compact search never touched the interner on `{}`",
                        case.property
                    );
                }
            }
        }
        if let Some(r) = &legacy_seq {
            assert_eq!(
                (
                    r.stats.intern_calls,
                    r.stats.intern_hits,
                    r.stats.intern_misses
                ),
                (0, 0, 0),
                "legacy run books intern traffic on `{}`",
                case.property
            );
        }

        // Sharded-merge exactness across worker counts: the distinct-entry
        // count (== misses) never depends on scheduling.
        let completed: Vec<&Report> = compact_par.iter().flatten().collect();
        for pair in completed.windows(2) {
            let (a, b) = (&pair[0].stats, &pair[1].stats);
            assert_eq!(
                a.intern_misses, b.intern_misses,
                "distinct interned entries diverge across worker counts on `{}`",
                case.property
            );
        }
        // And the sequential run books exactly the same distinct entries
        // as any parallel run (both explore the full reachable product).
        if let (Some(s), Some(p)) = (&compact_seq, completed.first()) {
            if s.outcome.holds() {
                assert_eq!(
                    s.stats.intern_misses, p.stats.intern_misses,
                    "seq/par distinct interned entries diverge on `{}`",
                    case.property
                );
            }
        }

        // Representation-blind reporting: identical redacted reports.
        if let (Some(c), Some(l)) = (&compact_seq, &legacy_seq) {
            let (c, l) = (c.telemetry.redacted(), l.telemetry.redacted());
            assert_eq!(
                c, l,
                "redacted reports differ between representations on `{}`",
                case.property
            );
            assert_eq!(
                format!("{:?}", c.to_json_value()),
                format!("{:?}", l.to_json_value()),
                "serialized redacted reports differ between representations on `{}`",
                case.property
            );
        }
    });
}

type Setup = Box<dyn Fn() -> (Verifier, Instance)>;

#[test]
fn stats_invariants_hold_on_the_scenario_library() {
    let setups: Vec<(&str, Setup, String)> = vec![
        (
            "bank_loan",
            Box::new(|| {
                let mut v = Verifier::new(bank_loan::composition(
                    true,
                    Semantics {
                        nested_send_skips_empty: true,
                        ..Semantics::default()
                    },
                ));
                let db = bank_loan::demo_database(v.composition_mut());
                (v, db)
            }),
            bank_loan::PROP_RATINGS_REFLECT_DB.to_string(),
        ),
        (
            "ecommerce",
            Box::new(|| {
                let mut v = Verifier::new(ecommerce::composition(true, Semantics::default()));
                let db = ecommerce::demo_database(v.composition_mut());
                (v, db)
            }),
            ecommerce::PROP_CHARGES_ARE_VALID.to_string(),
        ),
        (
            "travel",
            Box::new(|| {
                let mut v = Verifier::new(travel::composition(
                    true,
                    Semantics {
                        nested_send_skips_empty: true,
                        ..Semantics::default()
                    },
                ));
                let db = travel::demo_database(v.composition_mut());
                (v, db)
            }),
            travel::PROP_RESULTS_ARE_REAL.to_string(),
        ),
        (
            "chains",
            Box::new(|| {
                let mut v = Verifier::new(chains::composition(3, true, Semantics::default()));
                let db = chains::database(v.composition_mut(), 1);
                (v, db)
            }),
            chains::prop_integrity(3),
        ),
        (
            "auditor_chain",
            Box::new(|| {
                let mut v = Verifier::new(chains::composition_with_auditor(
                    3,
                    6,
                    true,
                    Semantics::default(),
                ));
                let db = chains::database(v.composition_mut(), 1);
                (v, db)
            }),
            chains::prop_integrity(3),
        ),
    ];

    for (name, setup, property) in &setups {
        for threads in [None, Some(2)] {
            for reduction in [Reduction::Full, Reduction::Ample] {
                let (mut v, db) = setup();
                let opts = VerifyOptions {
                    database: DatabaseMode::Fixed(db),
                    fresh_values: Some(1),
                    threads,
                    reduction,
                    ..VerifyOptions::default()
                };
                let report = v
                    .check_str(property, &opts)
                    .expect("scenario verification completes");
                assert_run_invariants(
                    &report,
                    reduction,
                    &format!("{name} threads={threads:?} reduction={reduction:?}"),
                );
            }
        }
    }
}

/// The open officer composition from examples/modular_loan — `O` asks the
/// environment for ratings — plus its one-customer database.
fn modular_fixture() -> (Verifier, Instance) {
    let mut b = CompositionBuilder::new();
    b.channel("getRating", 1, QueueKind::Flat, "O", ENV);
    b.channel("rating", 2, QueueKind::Flat, ENV, "O");
    b.peer("O")
        .database("customer", 2)
        .state("rated", 2)
        .input("check", 1)
        .input_rule("check", &["ssn"], "exists id: customer(id, ssn)")
        .send_rule("getRating", &["ssn"], "check(ssn)")
        .state_insert_rule("rated", &["ssn", "r"], "?rating(ssn, r)");
    let mut v = Verifier::new(b.build().expect("open composition"));
    let mut db = Instance::empty(&v.composition().voc);
    let c1 = v.composition_mut().symbols.intern("c1");
    let s1 = v.composition_mut().symbols.intern("s1");
    let customer = v.composition().voc.lookup("O.customer").unwrap();
    db.relation_mut(customer).insert(Tuple::new(vec![c1, s1]));
    (v, db)
}

const MODULAR_PROP: &str = "G (forall ssn, r: O.?rating(ssn, r) -> \
    (r = \"poor\" or r = \"fair\" or r = \"good\" or r = \"excellent\"))";
const MODULAR_SPEC: &str = "G (forall ssn, r: ENV.!rating(ssn, r) -> \
    (r = \"poor\" or r = \"fair\" or r = \"good\" or r = \"excellent\"))";

/// The request/response composition from examples/protocol_check, with a
/// database backing one fair rating.
fn protocol_fixture() -> (Verifier, Instance) {
    let mut b = CompositionBuilder::new();
    b.channel("getRating", 1, QueueKind::Flat, "O", "CR");
    b.channel("rating", 2, QueueKind::Flat, "CR", "O");
    b.peer("O")
        .database("customer", 1)
        .input("check", 1)
        .input_rule("check", &["ssn"], "customer(ssn)")
        .send_rule("getRating", &["ssn"], "check(ssn)");
    b.peer("CR").database("creditRating", 2).send_rule(
        "rating",
        &["ssn", "cat"],
        "?getRating(ssn) and creditRating(ssn, cat)",
    );
    let mut v = Verifier::new(b.build().expect("composition"));
    let mut db = Instance::empty(&v.composition().voc);
    let s1 = v.composition_mut().symbols.intern("s1");
    let fair = v.composition_mut().symbols.intern("fair");
    let customer = v.composition().voc.lookup("O.customer").unwrap();
    let credit = v.composition().voc.lookup("CR.creditRating").unwrap();
    db.relation_mut(customer).insert(Tuple::new(vec![s1]));
    db.relation_mut(credit).insert(Tuple::new(vec![s1, fair]));
    (v, db)
}

/// G(getRating → F rating) observed at the recipient — violated under
/// lossy channels.
fn response_protocol(v: &Verifier) -> DataAgnosticProtocol {
    DataAgnosticProtocol::new(
        v.composition(),
        &["getRating", "rating"],
        automata_shapes::response(2, 0, 1),
        Observer::AtRecipient,
    )
    .unwrap()
}

/// "Every rating message is database-backed", over a single-state
/// automaton with an accepting self-loop (so the product search actually
/// explores the composition).
fn db_backed_protocol(v: &mut Verifier) -> DataAwareProtocol {
    use ddws_automata::{Guard, Nba};
    let aware = DataAwareProtocol::new(
        v.composition_mut(),
        &[(
            "rating_is_db_backed",
            "forall ssn, cat: CR.!rating(ssn, cat) -> CR.creditRating(ssn, cat)",
        )],
        automata_shapes::universal(1),
    )
    .unwrap();
    let mut nba = Nba::new(1, 1);
    nba.add_initial(0);
    nba.add_transition(0, Guard::require(0), 0);
    nba.accepting[0] = true;
    DataAwareProtocol {
        symbols: aware.symbols,
        guards: aware.guards,
        automaton: nba,
    }
}

/// Asserts the report validates against the documented schema and carries
/// the expected entry-point label, returning it for further checks.
// One report per run, schema-valid, round-trippable, coherent counters,
// pinned entry point and outcome label — shared with the fault swarm and
// the deterministic simulator.
use common::assert_labelled;

#[test]
fn every_entry_point_emits_a_labelled_report() {
    // `check`: the bank-loan scenario.
    let buf = Arc::new(BufferReporter::new());
    {
        let mut v = Verifier::new(bank_loan::composition(
            true,
            Semantics {
                nested_send_skips_empty: true,
                ..Semantics::default()
            },
        ));
        let db = bank_loan::demo_database(v.composition_mut());
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(db),
            fresh_values: Some(1),
            reporter: ReporterHandle::new(buf.clone()),
            ..VerifyOptions::default()
        };
        let report = v
            .check_str(bank_loan::PROP_RATINGS_REFLECT_DB, &opts)
            .expect("check completes");
        assert!(report.outcome.holds());
        let r = assert_labelled(buf.take_reports(), "check", "holds");
        assert_eq!(r, report.telemetry, "reporter copy equals the Report copy");
    }

    // `check_modular`: the open officer composition from examples/modular_loan.
    {
        let (mut v, db) = modular_fixture();
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(db),
            fresh_values: Some(1),
            reporter: ReporterHandle::new(buf.clone()),
            ..VerifyOptions::default()
        };
        let property = v.parse_property(MODULAR_PROP).unwrap();
        let spec = v.parse_env_spec(MODULAR_SPEC).unwrap();
        let report = v
            .check_modular(&property, &spec, &opts)
            .expect("modular check completes");
        assert!(report.outcome.holds());
        let r = assert_labelled(buf.take_reports(), "check_modular", "holds");
        assert_eq!(r, report.telemetry);
    }

    // The protocol entry points: the request/response composition from
    // examples/protocol_check.
    {
        let (mut v, db) = protocol_fixture();
        let opts = VerifyOptions {
            database: DatabaseMode::Fixed(db),
            fresh_values: Some(1),
            reporter: ReporterHandle::new(buf.clone()),
            ..VerifyOptions::default()
        };

        // `protocol_data_agnostic`: G(getRating -> F rating), violated
        // under lossy channels.
        let response = response_protocol(&v);
        let report = v
            .check_data_agnostic(&response, &opts)
            .expect("data-agnostic check completes");
        assert!(!report.outcome.holds());
        let r = assert_labelled(buf.take_reports(), "protocol_data_agnostic", "violated");
        assert_eq!(r, report.telemetry);

        // `protocol_data_aware`: every rating message is database-backed.
        let aware = db_backed_protocol(&mut v);
        let report = v
            .check_data_aware(&aware, &opts)
            .expect("data-aware check completes");
        let label = if report.outcome.holds() {
            "holds"
        } else {
            "violated"
        };
        let r = assert_labelled(buf.take_reports(), "protocol_data_aware", label);
        assert_eq!(r, report.telemetry);
    }
}

#[test]
fn abort_reports_are_labelled_on_every_entry_point() {
    let buf = Arc::new(BufferReporter::new());

    // Each abort trigger as an options mutation. `max_states: 1` trips on
    // every entry point (each product search visits at least two states);
    // the other two stop the search before its first expansion.
    let arm = |label: &str, opts: &mut VerifyOptions| match label {
        "budget_exceeded" => opts.max_states = 1,
        "deadline_exceeded" => opts.deadline = Some(Duration::ZERO),
        _ => {
            let token = CancelToken::new();
            token.cancel("cancelled before the run");
            opts.cancel_token = Some(token);
        }
    };
    let assert_abort = |reports: Vec<RunReport>, entry: &str, label: &str, resumable: bool| {
        let r = assert_labelled(reports, entry, label);
        assert!(
            r.counters.truncated,
            "{entry}/{label}: partial counters not flagged"
        );
        let abort = r
            .abort
            .as_ref()
            .unwrap_or_else(|| panic!("{entry}/{label}: abort object missing"));
        assert_eq!(abort.reason, label, "{entry}");
        assert_eq!(abort.resumable, resumable, "{entry}/{label}");
    };

    for label in ["budget_exceeded", "deadline_exceeded", "cancelled"] {
        // `check`: aborts capture a frontier checkpoint, so they are
        // resumable.
        {
            let mut v = Verifier::new(chains::composition(3, true, Semantics::default()));
            let db = chains::database(v.composition_mut(), 2);
            let mut opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                reporter: ReporterHandle::new(buf.clone()),
                ..VerifyOptions::default()
            };
            arm(label, &mut opts);
            let report = v
                .check_str(&chains::prop_integrity(3), &opts)
                .expect("an abort is a report, not an error");
            assert!(
                matches!(&report.outcome, Outcome::Inconclusive(inc) if inc.checkpoint.is_some()),
                "check/{label}: expected a resumable Inconclusive, got {:?}",
                report.outcome
            );
            let reports = buf.take_reports();
            // The bench harness relabels a verifier report as its own
            // entry point before validating it into the bench artifact;
            // abort reports must survive that relabelling.
            let bench = RunReport {
                entry_point: "bench".into(),
                ..reports[0].clone()
            };
            validate_run_report(&bench.to_json_value())
                .unwrap_or_else(|e| panic!("bench/{label}: schema violation: {e}"));
            assert_abort(reports, "check", label, true);
        }

        // `check_modular`: aborts are final — the spec translation is
        // cheap to redo, so no checkpoint is captured.
        {
            let (mut v, db) = modular_fixture();
            let mut opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                reporter: ReporterHandle::new(buf.clone()),
                ..VerifyOptions::default()
            };
            arm(label, &mut opts);
            let property = v.parse_property(MODULAR_PROP).unwrap();
            let spec = v.parse_env_spec(MODULAR_SPEC).unwrap();
            let report = v
                .check_modular(&property, &spec, &opts)
                .expect("an abort is a report, not an error");
            assert!(
                matches!(&report.outcome, Outcome::Inconclusive(inc) if inc.checkpoint.is_none()),
                "check_modular/{label}: got {:?}",
                report.outcome
            );
            assert_abort(buf.take_reports(), "check_modular", label, false);
        }

        // The protocol entry points, likewise final.
        {
            let (mut v, db) = protocol_fixture();
            let mut opts = VerifyOptions {
                database: DatabaseMode::Fixed(db),
                fresh_values: Some(1),
                reporter: ReporterHandle::new(buf.clone()),
                ..VerifyOptions::default()
            };
            arm(label, &mut opts);

            let response = response_protocol(&v);
            let report = v
                .check_data_agnostic(&response, &opts)
                .expect("an abort is a report, not an error");
            assert!(
                report.outcome.is_inconclusive(),
                "protocol_data_agnostic/{label}: got {:?}",
                report.outcome
            );
            assert_abort(buf.take_reports(), "protocol_data_agnostic", label, false);

            let aware = db_backed_protocol(&mut v);
            let report = v
                .check_data_aware(&aware, &opts)
                .expect("an abort is a report, not an error");
            assert!(
                report.outcome.is_inconclusive(),
                "protocol_data_aware/{label}: got {:?}",
                report.outcome
            );
            assert_abort(buf.take_reports(), "protocol_data_aware", label, false);
        }
    }
}
