//! Deterministic service swarm (DESIGN.md §3.14).
//!
//! Each case is one seeded [`ddws_sim::run_service_seed`] run: N
//! simulated clients submit compgen verification jobs to an in-process
//! [`ddws_server::Server`] under `ManualClock`, all traffic over real
//! wire frames, the scheduler driven quantum-by-quantum from the seed.
//! Inside the run every invariant is recorded as a violation:
//!
//! * every submitted job reaches a terminal state;
//! * every served verdict (and counterexample digest) equals a direct
//!   one-shot unsharded `Verifier` oracle with the same budget;
//! * each executed slice streams exactly one schema-valid run report;
//! * strict round-robin fairness on the canonical slice trace.
//!
//! On top of the recorded invariants this file asserts the replay law —
//! the canonical service log *and* the redacted final reports are
//! byte-identical across repeated runs of one seed — and the starvation
//! bound: with a budget-explosive tenant queued *first*, every other
//! job still completes within one extra round of quanta per slice.

mod common;

use ddws_sim::{
    fairness_violations, run_service_seed, run_service_seed_with_override,
    shrink_service_violation, ServiceBug, ServiceRun, ServiceSimOptions,
};
use ddws_testkit::faults::FrameChaos;
use ddws_testkit::seed_from;

/// Swarm size. Each run is itself a multi-job service schedule, so this
/// is ~`SWARM_SEEDS × (clients × jobs_per_client + 1)` verified jobs.
const SWARM_SEEDS: u64 = 12;

/// The hostile-wire profile of the chaos swarm: every fault class on —
/// bit flips, losses in both directions, duplicates, reordering — plus
/// mid-slice worker crashes and per-client clock skew.
fn chaos_opts() -> ServiceSimOptions {
    ServiceSimOptions {
        chaos: FrameChaos {
            corrupt_in: 40,
            drop_in: 30,
            dup_in: 30,
            reorder_in: 40,
        },
        crash_in: 10,
        skew_ns: 1_000,
        ..ServiceSimOptions::default()
    }
}

/// Fails the test for a violating run: shrink the first attributed
/// violation against the identical schedule, print the 1-minimal spec
/// and the canonical trace, write a replayable artifact when
/// `$SIM_ARTIFACT_DIR` is set, then panic.
fn fail_run(run: &ServiceRun, opts: &ServiceSimOptions) -> ! {
    eprintln!("service seed {} violated:", run.seed);
    for v in &run.violations {
        eprintln!("  {v}");
    }
    let mut artifact = String::new();
    artifact.push_str(&format!("seed: {}\n", run.seed));
    for v in &run.violations {
        artifact.push_str(&format!("violation: {v}\n"));
    }
    if let Some(shrunk) = shrink_service_violation(run, opts) {
        eprintln!(
            "  shrunk job {} spec: {} atoms -> {} atoms",
            shrunk.job,
            shrunk.spec.size(),
            shrunk.min.size()
        );
        eprintln!("  minimal spec: {:?}", shrunk.min);
        eprintln!("minimized canonical trace:\n{}", shrunk.trace);
        artifact.push_str(&format!(
            "shrunk job {}: {} -> {} atoms\nminimal spec: {:?}\ntrace:\n{}",
            shrunk.job,
            shrunk.spec.size(),
            shrunk.min.size(),
            shrunk.min,
            shrunk.trace
        ));
    } else {
        eprintln!("canonical trace:\n{}", run.trace);
        artifact.push_str(&format!("trace:\n{}", run.trace));
    }
    if let Ok(dir) = std::env::var("SIM_ARTIFACT_DIR") {
        let path = std::path::Path::new(&dir).join(format!("service_seed_{}.txt", run.seed));
        if let Err(e) = std::fs::write(&path, &artifact) {
            eprintln!("  (failed to write artifact {}: {e})", path.display());
        } else {
            eprintln!("  artifact: {}", path.display());
        }
    }
    panic!(
        "service seed {}: {} violation(s)",
        run.seed,
        run.violations.len()
    );
}

/// The swarm: violation-free runs, terminal jobs, oracle agreement —
/// all recorded inside [`run_service_seed`] and asserted empty here.
#[test]
fn service_swarm_is_violation_free() {
    let opts = ServiceSimOptions::default();
    let base = seed_from("server_sim::swarm");
    for i in 0..SWARM_SEEDS {
        let run = run_service_seed(base.wrapping_add(i), &opts);
        if !run.violations.is_empty() {
            fail_run(&run, &opts);
        }
        assert!(!run.jobs.is_empty(), "seed {}: no jobs submitted", run.seed);
        for job in &run.jobs {
            assert!(
                job.verdict.is_some(),
                "seed {}: job {} fetched no verdict",
                run.seed,
                job.job
            );
        }
    }
}

/// The replay law: one seed, two runs, byte-identical canonical trace
/// and byte-identical redacted final reports.
#[test]
fn service_replay_is_byte_identical() {
    let opts = ServiceSimOptions::default();
    let seed = seed_from("server_sim::replay");
    let first = run_service_seed(seed, &opts);
    if !first.violations.is_empty() {
        fail_run(&first, &opts);
    }
    let second = run_service_seed(seed, &opts);
    assert_eq!(
        first.trace, second.trace,
        "seed {seed}: canonical service log diverged between replays"
    );
    assert_eq!(
        first.redacted_reports, second.redacted_reports,
        "seed {seed}: redacted reports diverged between replays"
    );
    assert!(!first.trace.is_empty(), "seed {seed}: empty trace");
    assert!(
        !first.redacted_reports.is_empty(),
        "seed {seed}: no redacted reports"
    );
}

/// The fairness law, adversarially: the budget-explosive `starver`
/// scenario is queued *first*, ahead of every compgen job. Round-robin
/// preemption must still complete every other job, each within one
/// extra round of quanta per slice of its own work.
#[test]
fn starver_cannot_delay_the_fleet() {
    let opts = ServiceSimOptions {
        starver: true,
        cancel_one: false,
        ..ServiceSimOptions::default()
    };
    let run = run_service_seed(seed_from("server_sim::starver"), &opts);
    if !run.violations.is_empty() {
        fail_run(&run, &opts);
    }

    let total_jobs = run.jobs.len() as u64;
    let starver = &run.jobs[0];
    assert_eq!(starver.scenario.as_deref(), Some("starver"));
    assert!(
        starver.slices > 1,
        "starver finished in {} slice(s) — not pathological enough to starve anyone",
        starver.slices
    );
    for job in &run.jobs[1..] {
        let done = job
            .completed_step
            .unwrap_or_else(|| panic!("seed {}: job {} never completed", run.seed, job.job));
        // Strict round-robin: every slice of this job waits at most one
        // full round (≤ total_jobs quanta), plus one round of submission
        // slack — so completion is bounded by (slices + 1) × total_jobs.
        let bound = (job.slices + 1) * total_jobs + job.submitted_step;
        assert!(
            done <= bound,
            "seed {}: job {} took until step {done} (bound {bound}: {} slices × {total_jobs} jobs)",
            run.seed,
            job.job,
            job.slices
        );
    }
    // And the trace-level law holds verbatim on this schedule too.
    assert!(fairness_violations(&run.trace).is_empty());
}

/// The planned mid-run cancellation leaves exactly one cancelled job,
/// with its parked checkpoint discarded, and nothing else disturbed.
#[test]
fn seeded_cancellation_is_clean() {
    let opts = ServiceSimOptions {
        // A small quantum against the default budget forces parking, so
        // the cancel lands on a parked checkpoint.
        quantum_states: 64,
        budget: 4_096,
        ..ServiceSimOptions::default()
    };
    let base = seed_from("server_sim::cancel");
    let mut saw_discard = false;
    for i in 0..SWARM_SEEDS {
        let run = run_service_seed(base.wrapping_add(i), &opts);
        if !run.violations.is_empty() {
            fail_run(&run, &opts);
        }
        let cancelled: Vec<_> = run.jobs.iter().filter(|j| j.cancelled).collect();
        assert!(
            cancelled.len() <= 1,
            "seed {}: {} cancelled jobs from one planned cancel",
            run.seed,
            cancelled.len()
        );
        for job in cancelled {
            assert_eq!(job.verdict.as_deref(), Some("cancelled"));
            assert!(job.counterexample.is_none());
            saw_discard |= job.discarded_checkpoint;
        }
    }
    assert!(
        saw_discard,
        "no seed in the swarm cancelled a job with a parked checkpoint — \
         widen the swarm or shrink the quantum"
    );
}

/// The chaos swarm (DESIGN.md §3.15): the same end-to-end runs under a
/// hostile wire — frames dropped, duplicated, reordered, bit-flipped —
/// with seeded mid-slice worker crashes and per-client clock skew. The
/// robustness contract holds on every seed: no hang, no panic, and
/// every submitted job drains to an oracle-exact verdict or a typed
/// terminal answer, with telemetry conservation intact (crashed slices
/// included).
#[test]
fn chaos_swarm_upholds_the_robustness_contract() {
    common::silence_injected_panics();
    let opts = chaos_opts();
    let base = seed_from("server_sim::chaos");
    let (mut faults, mut recoveries) = (0u64, 0u64);
    for i in 0..SWARM_SEEDS {
        let run = run_service_seed(base.wrapping_add(i), &opts);
        if !run.violations.is_empty() {
            fail_run(&run, &opts);
        }
        assert!(!run.jobs.is_empty(), "seed {}: no jobs submitted", run.seed);
        for job in &run.jobs {
            assert!(
                job.verdict.is_some(),
                "seed {}: job {} fetched no verdict",
                run.seed,
                job.job
            );
        }
        faults += run.wire_faults;
        recoveries += run.crash_recoveries;
    }
    // The chaos must actually bite, or the swarm proves nothing.
    assert!(faults > 0, "no frame faults across the chaos swarm");
    assert!(
        recoveries > 0,
        "no crashed slices were re-dispatched across the chaos swarm"
    );
}

/// The replay law under chaos: every injected fault — which frame is
/// lost, where a worker panics, how far a clock skews — is a pure
/// function of the seed, so one chaotic seed replays byte-identically.
#[test]
fn chaos_replay_is_byte_identical() {
    common::silence_injected_panics();
    let opts = chaos_opts();
    let seed = seed_from("server_sim::chaos_replay");
    let first = run_service_seed(seed, &opts);
    if !first.violations.is_empty() {
        fail_run(&first, &opts);
    }
    let second = run_service_seed(seed, &opts);
    assert_eq!(
        first.trace, second.trace,
        "seed {seed}: canonical service log diverged between chaos replays"
    );
    assert_eq!(
        first.redacted_reports, second.redacted_reports,
        "seed {seed}: redacted reports diverged between chaos replays"
    );
    assert_eq!(first.wire_faults, second.wire_faults);
    assert_eq!(first.quanta, second.quanta);
    assert!(!first.trace.is_empty(), "seed {seed}: empty trace");
}

/// The shrink fold: a deliberately-injected serving bug (verdict flip)
/// is caught by the oracle invariant, attributed to its job, and
/// delta-debugged against the *identical* schedule into a 1-minimal
/// spec that still diverges.
#[test]
fn injected_verdict_flip_shrinks_to_a_minimal_service_spec() {
    let opts = ServiceSimOptions {
        bug: Some(ServiceBug::FlipVerdict),
        ..ServiceSimOptions::default()
    };
    let seed = seed_from("server_sim::flip");
    let run = run_service_seed(seed, &opts);
    assert!(
        run.attributed.iter().any(|(_, d)| d.contains("oracle")),
        "flipped verdicts must diverge from the oracle; got {:?}",
        run.violations
    );

    let shrunk = shrink_service_violation(&run, &opts).expect("a spec job diverged");
    assert!(
        shrunk.min.size() <= shrunk.spec.size(),
        "shrinking must not grow the spec"
    );
    assert!(!shrunk.trace.is_empty(), "minimized run has a trace");
    // The minimal spec still diverges under the identical schedule, and
    // re-minimizing it is a fixpoint (1-minimality).
    let replay = run_service_seed_with_override(seed, &opts, shrunk.job, &shrunk.min);
    assert!(
        replay.attributed.iter().any(|(j, _)| *j == shrunk.job),
        "minimal spec no longer diverges under the pinned schedule"
    );
    let again = ddws_testkit::compgen::minimize_spec(&shrunk.min, |cand| {
        run_service_seed_with_override(seed, &opts, shrunk.job, cand)
            .attributed
            .iter()
            .any(|(j, _)| *j == shrunk.job)
    });
    assert_eq!(
        again.size(),
        shrunk.min.size(),
        "minimized spec was not 1-minimal"
    );
}
