//! Deterministic service swarm (DESIGN.md §3.14).
//!
//! Each case is one seeded [`ddws_sim::run_service_seed`] run: N
//! simulated clients submit compgen verification jobs to an in-process
//! [`ddws_server::Server`] under `ManualClock`, all traffic over real
//! wire frames, the scheduler driven quantum-by-quantum from the seed.
//! Inside the run every invariant is recorded as a violation:
//!
//! * every submitted job reaches a terminal state;
//! * every served verdict (and counterexample digest) equals a direct
//!   one-shot unsharded `Verifier` oracle with the same budget;
//! * each executed slice streams exactly one schema-valid run report;
//! * strict round-robin fairness on the canonical slice trace.
//!
//! On top of the recorded invariants this file asserts the replay law —
//! the canonical service log *and* the redacted final reports are
//! byte-identical across repeated runs of one seed — and the starvation
//! bound: with a budget-explosive tenant queued *first*, every other
//! job still completes within one extra round of quanta per slice.

use ddws_sim::{fairness_violations, run_service_seed, ServiceRun, ServiceSimOptions};
use ddws_testkit::seed_from;

/// Swarm size. Each run is itself a multi-job service schedule, so this
/// is ~`SWARM_SEEDS × (clients × jobs_per_client + 1)` verified jobs.
const SWARM_SEEDS: u64 = 12;

fn fail_run(run: &ServiceRun) -> ! {
    eprintln!("service seed {} violated:", run.seed);
    for v in &run.violations {
        eprintln!("  {v}");
    }
    eprintln!("canonical trace:\n{}", run.trace);
    panic!(
        "service seed {}: {} violation(s)",
        run.seed,
        run.violations.len()
    );
}

/// The swarm: violation-free runs, terminal jobs, oracle agreement —
/// all recorded inside [`run_service_seed`] and asserted empty here.
#[test]
fn service_swarm_is_violation_free() {
    let opts = ServiceSimOptions::default();
    let base = seed_from("server_sim::swarm");
    for i in 0..SWARM_SEEDS {
        let run = run_service_seed(base.wrapping_add(i), &opts);
        if !run.violations.is_empty() {
            fail_run(&run);
        }
        assert!(!run.jobs.is_empty(), "seed {}: no jobs submitted", run.seed);
        for job in &run.jobs {
            assert!(
                job.verdict.is_some(),
                "seed {}: job {} fetched no verdict",
                run.seed,
                job.job
            );
        }
    }
}

/// The replay law: one seed, two runs, byte-identical canonical trace
/// and byte-identical redacted final reports.
#[test]
fn service_replay_is_byte_identical() {
    let opts = ServiceSimOptions::default();
    let seed = seed_from("server_sim::replay");
    let first = run_service_seed(seed, &opts);
    if !first.violations.is_empty() {
        fail_run(&first);
    }
    let second = run_service_seed(seed, &opts);
    assert_eq!(
        first.trace, second.trace,
        "seed {seed}: canonical service log diverged between replays"
    );
    assert_eq!(
        first.redacted_reports, second.redacted_reports,
        "seed {seed}: redacted reports diverged between replays"
    );
    assert!(!first.trace.is_empty(), "seed {seed}: empty trace");
    assert!(
        !first.redacted_reports.is_empty(),
        "seed {seed}: no redacted reports"
    );
}

/// The fairness law, adversarially: the budget-explosive `starver`
/// scenario is queued *first*, ahead of every compgen job. Round-robin
/// preemption must still complete every other job, each within one
/// extra round of quanta per slice of its own work.
#[test]
fn starver_cannot_delay_the_fleet() {
    let opts = ServiceSimOptions {
        starver: true,
        cancel_one: false,
        ..ServiceSimOptions::default()
    };
    let run = run_service_seed(seed_from("server_sim::starver"), &opts);
    if !run.violations.is_empty() {
        fail_run(&run);
    }

    let total_jobs = run.jobs.len() as u64;
    let starver = &run.jobs[0];
    assert_eq!(starver.scenario.as_deref(), Some("starver"));
    assert!(
        starver.slices > 1,
        "starver finished in {} slice(s) — not pathological enough to starve anyone",
        starver.slices
    );
    for job in &run.jobs[1..] {
        let done = job
            .completed_step
            .unwrap_or_else(|| panic!("seed {}: job {} never completed", run.seed, job.job));
        // Strict round-robin: every slice of this job waits at most one
        // full round (≤ total_jobs quanta), plus one round of submission
        // slack — so completion is bounded by (slices + 1) × total_jobs.
        let bound = (job.slices + 1) * total_jobs + job.submitted_step;
        assert!(
            done <= bound,
            "seed {}: job {} took until step {done} (bound {bound}: {} slices × {total_jobs} jobs)",
            run.seed,
            job.job,
            job.slices
        );
    }
    // And the trace-level law holds verbatim on this schedule too.
    assert!(fairness_violations(&run.trace).is_empty());
}

/// The planned mid-run cancellation leaves exactly one cancelled job,
/// with its parked checkpoint discarded, and nothing else disturbed.
#[test]
fn seeded_cancellation_is_clean() {
    let opts = ServiceSimOptions {
        // A small quantum against the default budget forces parking, so
        // the cancel lands on a parked checkpoint.
        quantum_states: 64,
        budget: 4_096,
        ..ServiceSimOptions::default()
    };
    let base = seed_from("server_sim::cancel");
    let mut saw_discard = false;
    for i in 0..SWARM_SEEDS {
        let run = run_service_seed(base.wrapping_add(i), &opts);
        if !run.violations.is_empty() {
            fail_run(&run);
        }
        let cancelled: Vec<_> = run.jobs.iter().filter(|j| j.cancelled).collect();
        assert!(
            cancelled.len() <= 1,
            "seed {}: {} cancelled jobs from one planned cancel",
            run.seed,
            cancelled.len()
        );
        for job in cancelled {
            assert_eq!(job.verdict.as_deref(), Some("cancelled"));
            assert!(job.counterexample.is_none());
            saw_discard |= job.discarded_checkpoint;
        }
    }
    assert!(
        saw_discard,
        "no seed in the swarm cancelled a job with a parked checkpoint — \
         widen the swarm or shrink the quantum"
    );
}
