//! Differential swarm: 200+ randomly generated compositions, each checked
//! under `Reduction::Full` and `Reduction::Ample`, asserting verdict
//! agreement (see `common::assert_case_agrees` for the budget semantics).
//!
//! Failures print the per-case sub-seed; pin it in `tests/regressions.rs`
//! so it stays covered forever.

mod common;

use ddws_testkit::{gen, seed_from};

#[test]
fn full_and_ample_agree_on_200_random_cases() {
    gen::cases(200, seed_from("swarm_full_vs_ample"), |rng| {
        common::assert_case_agrees(rng);
    });
}
