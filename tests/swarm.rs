//! Differential swarm: 200+ randomly generated compositions, each checked
//! under `Reduction::Full` and `Reduction::Ample`, asserting verdict
//! agreement (see `common::case_agrees` for the budget semantics).
//!
//! Failures are delta-debugged first (`common::shrink_on_failure` /
//! `compgen::minimize`): the harness prints a 1-minimal spec that still
//! fails the same check, then the per-case sub-seed; pin the sub-seed in
//! `tests/regressions.rs` so it stays covered forever.

mod common;

use ddws_testkit::{gen, seed_from};

#[test]
fn full_and_ample_agree_on_200_random_cases() {
    gen::cases(200, seed_from("swarm_full_vs_ample"), |rng| {
        common::shrink_on_failure(rng, common::case_agrees);
    });
}

#[test]
fn compact_and_legacy_representations_agree_on_200_random_cases() {
    // Interned bit-packed states vs. the legacy `Config` representation:
    // identical successor lists (tuple-for-tuple through compact/expand),
    // identical rule-cache hit/miss totals, and identical verdicts across
    // {seq, par2} × {Full, Ample} × {Compiled, Interpreted} — with
    // `states_expanded` equal wherever the engine is deterministic, and
    // every compact counterexample replaying under the legacy stepper.
    gen::cases(200, seed_from("swarm_compact_vs_legacy"), |rng| {
        common::shrink_on_failure(rng, common::repr_agrees);
    });
}

#[test]
fn compiled_and_interpreted_agree_on_200_random_cases() {
    // Compiled rule kernels vs. the FO interpreter: identical rule
    // extensions (tuple-for-tuple successor agreement) and identical
    // verdicts across {seq, par2} × {Full, Ample}, with every compiled
    // counterexample replaying under the interpreter.
    gen::cases(200, seed_from("swarm_compiled_vs_interpreted"), |rng| {
        common::shrink_on_failure(rng, common::compiled_agrees);
    });
}
