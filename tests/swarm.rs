//! Differential swarm: 200+ randomly generated compositions, each checked
//! under `Reduction::Full` and `Reduction::Ample`, asserting verdict
//! agreement (see `common::assert_case_agrees` for the budget semantics).
//!
//! Failures print the per-case sub-seed; pin it in `tests/regressions.rs`
//! so it stays covered forever.

mod common;

use ddws_testkit::{gen, seed_from};

#[test]
fn full_and_ample_agree_on_200_random_cases() {
    gen::cases(200, seed_from("swarm_full_vs_ample"), |rng| {
        common::assert_case_agrees(rng);
    });
}

#[test]
fn compiled_and_interpreted_agree_on_200_random_cases() {
    // Compiled rule kernels vs. the FO interpreter: identical rule
    // extensions (tuple-for-tuple successor agreement) and identical
    // verdicts across {seq, par2} × {Full, Ample}, with every compiled
    // counterexample replaying under the interpreter.
    gen::cases(200, seed_from("swarm_compiled_vs_interpreted"), |rng| {
        common::assert_compiled_agrees(rng);
    });
}
