//! Deterministic whole-system simulation swarm (DESIGN.md §3.11).
//!
//! Each case is one seeded [`ddws_sim::run_seed`] run: several concurrent
//! compgen verification jobs scheduled cooperatively in random order,
//! preempted by virtual-clock deadlines, crashed, cancelled, resumed,
//! and channel-perturbed — with every invariant (report contract, oracle
//! agreement, planned-panic discipline, deadlock bound, loss closure)
//! checked inside the simulator and recorded as a violation.
//!
//! On a violation the failing job's spec is delta-debugged against the
//! *identical* schedule ([`ddws_sim::shrink_first_violation`]) and the
//! 1-minimal spec, the violation list, and the canonical trace are
//! printed (and written to `$SIM_ARTIFACT_DIR` when set) before the
//! panic — so a CI failure ships a replayable, minimized repro.

mod common;

use common::silence_injected_panics;
use ddws::scenarios::chains;
use ddws_model::Semantics;
use ddws_sim::{
    run_seed, run_with_case_override, run_with_jobs, shrink_first_violation, JobSource, SimBug,
    SimOptions, SimRun,
};
use ddws_testkit::{compgen, gen, seed_from};

/// Swarm size: the acceptance floor of DESIGN.md §3.11 is 300 cases.
const SWARM_CASES: usize = 300;

/// Fails the test for a violating run: shrink, report, optionally write
/// artifacts, panic.
fn fail_with_shrink(run: &SimRun, opts: &SimOptions) -> ! {
    eprintln!("sim seed {} violated:", run.seed);
    for (job, detail) in &run.violations {
        eprintln!("  job {job}: {detail}");
    }
    let mut artifact = String::new();
    artifact.push_str(&format!("seed: {}\n", run.seed));
    for (job, detail) in &run.violations {
        artifact.push_str(&format!("violation job {job}: {detail}\n"));
    }
    if let Some(shrunk) = shrink_first_violation(run.seed, opts) {
        eprintln!(
            "  shrunk job {} spec: {} atoms -> {} atoms",
            shrunk.job,
            shrunk.spec.size(),
            shrunk.min.size()
        );
        eprintln!("  minimal spec: {:?}", shrunk.min);
        artifact.push_str(&format!(
            "shrunk job {}: {} -> {} atoms\nminimal spec: {:?}\ntrace:\n{}",
            shrunk.job,
            shrunk.spec.size(),
            shrunk.min.size(),
            shrunk.min,
            shrunk.trace
        ));
    } else {
        artifact.push_str(&format!("trace:\n{}", run.canonical_trace()));
    }
    if let Ok(dir) = std::env::var("SIM_ARTIFACT_DIR") {
        let path = std::path::Path::new(&dir).join(format!("sim_seed_{}.txt", run.seed));
        if let Err(e) = std::fs::write(&path, &artifact) {
            eprintln!("  (failed to write artifact {}: {e})", path.display());
        } else {
            eprintln!("  artifact: {}", path.display());
        }
    }
    panic!(
        "sim seed {} violated {} invariant(s); replay with ddws_sim::run_seed({}, &SimOptions::default())",
        run.seed,
        run.violations.len(),
        run.seed
    );
}

/// Asserts byte-identical replay: trace and redacted run reports.
fn assert_replays(seed: u64, opts: &SimOptions, run: &SimRun) {
    let again = run_seed(seed, opts);
    assert_eq!(
        run.canonical_trace(),
        again.canonical_trace(),
        "sim seed {seed}: replay produced a different canonical trace"
    );
    assert_eq!(run.jobs.len(), again.jobs.len());
    for (a, b) in run.jobs.iter().zip(&again.jobs) {
        assert_eq!(a.verdict, b.verdict, "sim seed {seed}: verdict drift");
        assert_eq!(
            a.reports.len(),
            b.reports.len(),
            "sim seed {seed}: report count drift"
        );
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(
                ra.redacted().to_json(),
                rb.redacted().to_json(),
                "sim seed {seed}: redacted run reports drifted across replays"
            );
        }
    }
}

/// The main swarm: `SWARM_CASES` seeded whole-system runs, no violations
/// allowed, every eighth case replayed for byte-identical determinism.
#[test]
fn sim_swarm_is_violation_free_and_deterministic() {
    silence_injected_panics();
    let opts = SimOptions::default();
    let mut case = 0usize;
    gen::cases(SWARM_CASES, seed_from("sim_swarm"), |rng| {
        let seed = rng.next_u64();
        let run = run_seed(seed, &opts);
        if !run.violations.is_empty() {
            fail_with_shrink(&run, &opts);
        }
        // Belt-and-braces on top of the simulator's own invariants: every
        // job ends in a verdict (or a budget exhaustion its oracle shares
        // — anything else is a violation the simulator already flagged),
        // and conclusive verdicts agree with conclusive oracles.
        for job in &run.jobs {
            assert!(
                matches!(
                    job.verdict.as_str(),
                    "holds" | "violated" | "budget_exceeded"
                ),
                "sim seed {seed}: job ended {:?} without a terminal verdict",
                job.verdict
            );
            let conclusive = |s: &str| s == "holds" || s == "violated";
            if conclusive(&job.verdict) && job.oracle.as_deref().is_some_and(conclusive) {
                assert_eq!(
                    Some(&job.verdict),
                    job.oracle.as_ref(),
                    "sim seed {seed}: verdict/oracle mismatch escaped the simulator"
                );
            }
        }
        if case.is_multiple_of(8) {
            assert_replays(seed, &opts, &run);
        }
        case += 1;
    });
}

/// Same seed, same options ⇒ identical trace and redacted reports —
/// sequentially and from two OS threads at once (the simulator shares no
/// mutable ambient state, so `--test-threads` cannot perturb it).
#[test]
fn replay_is_deterministic_across_threads() {
    silence_injected_panics();
    let opts = SimOptions::default();
    let seed = seed_from("sim_replay_determinism");

    let first = run_seed(seed, &opts);
    assert_replays(seed, &opts, &first);

    let opts2 = opts.clone();
    let handle = std::thread::spawn(move || run_seed(seed, &opts2).canonical_trace());
    let local = run_seed(seed, &opts).canonical_trace();
    let remote = handle.join().expect("replay thread");
    assert_eq!(
        local, remote,
        "concurrent replays of seed {seed} disagreed on the canonical trace"
    );
}

/// The deliberately-injected verdict flip must be caught by the oracle
/// divergence invariant and shrink to a 1-minimal spec (re-minimizing the
/// minimum is a fixpoint).
#[test]
fn injected_verdict_flip_is_caught_and_shrunk_minimal() {
    silence_injected_panics();
    let opts = SimOptions {
        bug: Some(SimBug::FlipVerdict),
        ..SimOptions::default()
    };
    let seed = seed_from("sim_flip_verdict");
    let run = run_seed(seed, &opts);
    assert!(
        run.violations
            .iter()
            .any(|(_, d)| d.starts_with("divergence:")),
        "flipped verdicts must diverge from the oracle; got {:?}",
        run.violations
    );

    let shrunk = shrink_first_violation(seed, &opts).expect("a compgen job violated");
    assert!(
        shrunk.min.size() <= shrunk.spec.size(),
        "shrinking must not grow the spec"
    );
    // The minimized case still violates under the identical schedule.
    let replay = run_with_case_override(
        seed,
        &opts,
        shrunk.job,
        &shrunk.min.build().expect("minimal spec builds"),
    );
    assert!(
        replay
            .violations
            .iter()
            .any(|(j, d)| *j == shrunk.job && !d.starts_with("error:")),
        "minimized spec no longer reproduces the violation"
    );
    // 1-minimality: minimizing the minimum changes nothing.
    let again = compgen::minimize(&shrunk.min, |case| {
        run_with_case_override(seed, &opts, shrunk.job, case)
            .violations
            .iter()
            .any(|(j, d)| *j == shrunk.job && !d.starts_with("error:"))
    });
    assert_eq!(
        again.size(),
        shrunk.min.size(),
        "shrunk spec is not a minimization fixpoint"
    );
}

/// The deliberately-dropped run report must trip the exactly-one-report
/// contract.
#[test]
fn injected_report_loss_is_caught() {
    silence_injected_panics();
    let opts = SimOptions {
        bug: Some(SimBug::DropReport),
        ..SimOptions::default()
    };
    let run = run_seed(seed_from("sim_drop_report"), &opts);
    assert!(
        run.violations
            .iter()
            .any(|(job, d)| *job == 0 && d.starts_with("report:")),
        "dropping job 0's first report must violate the report contract; got {:?}",
        run.violations
    );
}

/// Fixed scenario-library jobs ride alongside the drawn corpus: a lossy
/// relay chain is sliced, resumed, and oracle-checked like any compgen
/// job, and the whole mixed run stays violation-free and replayable.
#[test]
fn scenario_jobs_run_alongside_drawn_corpus() {
    silence_injected_panics();
    let mut comp = chains::composition(3, true, Semantics::default());
    let db = chains::database(&mut comp, 1);
    let fixed = JobSource::Fixed {
        name: "chains3".to_string(),
        composition: Box::new(comp),
        database: db,
        property: chains::prop_integrity(3),
    };
    let opts = SimOptions {
        drawn_jobs: 2,
        ..SimOptions::default()
    };
    let seed = seed_from("sim_scenario_jobs");
    let run = run_with_jobs(seed, &opts, std::slice::from_ref(&fixed));
    if !run.violations.is_empty() {
        fail_with_shrink(&run, &opts);
    }
    assert_eq!(run.jobs.len(), 3);
    assert_eq!(run.jobs[2].kind, "chains3");
    assert!(matches!(run.jobs[2].verdict.as_str(), "holds" | "violated"));

    let again = run_with_jobs(seed, &opts, &[fixed]);
    assert_eq!(
        run.canonical_trace(),
        again.canonical_trace(),
        "mixed fixed/drawn runs must replay byte-identically"
    );
}
