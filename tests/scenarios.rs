//! Integration tests for the remaining scenario compositions (the WAVE-demo
//! substitutes of DESIGN.md): e-commerce, travel and the synthetic chains.

use ddws::scenarios::{chains, ecommerce, travel};
use ddws_model::Semantics;
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn opts(db: ddws_relational::Instance) -> VerifyOptions {
    VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        ..VerifyOptions::default()
    }
}

#[test]
fn ecommerce_charges_are_valid() {
    let mut v = Verifier::new(ecommerce::composition(true, Semantics::default()));
    let db = ecommerce::demo_database(v.composition_mut());
    let report = v
        .check_str(ecommerce::PROP_CHARGES_ARE_VALID, &opts(db))
        .unwrap();
    assert!(report.outcome.holds());
}

#[test]
fn ecommerce_is_input_bounded() {
    ecommerce::composition(true, Semantics::default())
        .check_input_bounded(Default::default())
        .unwrap();
}

#[test]
fn travel_results_match_schedule() {
    let sem = Semantics {
        nested_send_skips_empty: true,
        ..Semantics::default()
    };
    let mut v = Verifier::new(travel::composition(true, sem));
    let db = travel::demo_database(v.composition_mut());
    let report = v
        .check_str(travel::PROP_RESULTS_ARE_REAL, &opts(db))
        .unwrap();
    assert!(
        report.outcome.holds(),
        "nested offers carry only scheduled flights; valuations: {}",
        report.valuations_checked
    );
}

#[test]
fn travel_nested_channel_delivers_sets() {
    // The nested `offers` message carries BOTH flights of a destination in
    // one message: after a search for LIS, some reachable configuration has
    // both results recorded simultaneously.
    let sem = Semantics {
        nested_send_skips_empty: true,
        ..Semantics::default()
    };
    let mut v = Verifier::new(travel::composition(true, sem));
    let db = travel::demo_database(v.composition_mut());
    // "results never holds two flights at once" must be VIOLATED.
    let report = v
        .check_str(
            "G (not (Portal.results(\"LIS\", \"f1\") and Portal.results(\"LIS\", \"f2\")))",
            &opts(db),
        )
        .unwrap();
    assert!(
        !report.outcome.holds(),
        "a nested message delivers the whole set in one step"
    );
}

#[test]
fn chain_integrity_holds_and_scales() {
    for n in [2usize, 3] {
        let mut v = Verifier::new(chains::composition(n, true, Semantics::default()));
        let db = chains::database(v.composition_mut(), 1);
        let report = v.check_str(&chains::prop_integrity(n), &opts(db)).unwrap();
        assert!(report.outcome.holds(), "chain of {n} peers");
    }
}
