//! Modular verification (Section 5): verify the officer-side client of a
//! credit agency when the agency's implementation is *not* available —
//! only its declared input-output behaviour (Example 5.1's spec shape).
//!
//! Run with `cargo run --release --example modular_loan`.

use ddws_model::{builder::ENV, CompositionBuilder, QueueKind};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn main() {
    // The officer as an *open* composition: the credit agency is the
    // environment.
    let mut b = CompositionBuilder::new();
    b.channel("getRating", 1, QueueKind::Flat, "O", ENV);
    b.channel("rating", 2, QueueKind::Flat, ENV, "O");
    b.peer("O")
        .database("customer", 2) // (id, ssn)
        .state("rated", 2)
        .input("check", 1)
        .input_rule("check", &["ssn"], "exists id: customer(id, ssn)")
        .send_rule("getRating", &["ssn"], "check(ssn)")
        .state_insert_rule("rated", &["ssn", "r"], "?rating(ssn, r)");
    let mut verifier = Verifier::new(b.build().expect("open composition"));

    let mut db = Instance::empty(&verifier.composition().voc);
    let c1 = verifier.composition_mut().symbols.intern("c1");
    let s1 = verifier.composition_mut().symbols.intern("s1");
    let customer = verifier.composition().voc.lookup("O.customer").unwrap();
    db.relation_mut(customer).insert(Tuple::new(vec![c1, s1]));

    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        ..VerifyOptions::default()
    };

    // The property: recorded ratings come from the agency's category list.
    let property = verifier
        .parse_property(
            "G (forall ssn, r: O.?rating(ssn, r) -> \
               (r = \"poor\" or r = \"fair\" or r = \"good\" or r = \"excellent\"))",
        )
        .unwrap();

    // Without any environment assumption: the agency could answer anything.
    let unconstrained = verifier.check(&property, &opts).unwrap();
    println!(
        "without environment spec: {}",
        if unconstrained.outcome.holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );

    // Under Example 5.1's spec: replies use the pre-defined category list.
    let spec = verifier
        .parse_env_spec(
            "G (forall ssn, r: ENV.!rating(ssn, r) -> \
               (r = \"poor\" or r = \"fair\" or r = \"good\" or r = \"excellent\"))",
        )
        .unwrap();
    let modular = verifier.check_modular(&property, &spec, &opts).unwrap();
    println!(
        "under the Example 5.1 spec: {} ({} states, {} valuations)",
        if modular.outcome.holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        },
        modular.stats.states_visited,
        modular.valuations_checked
    );
}
