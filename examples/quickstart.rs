//! Five-minute tour: build a two-peer composition, state an LTL-FO
//! property, verify it over **all** databases, and read a counterexample.
//!
//! Run with `cargo run --release --example quickstart`.

use ddws_model::{CompositionBuilder, QueueKind};
use ddws_verifier::{Outcome, Verifier, VerifyOptions};

fn main() {
    // 1. A composition: Alice greets friends, Bob records the greetings.
    let mut b = CompositionBuilder::new();
    b.channel("ping", 1, QueueKind::Flat, "Alice", "Bob");
    b.peer("Alice")
        .database("friend", 1)
        .input("greet", 1)
        .input_rule("greet", &["x"], "friend(x)")
        .send_rule("ping", &["x"], "greet(x)");
    b.peer("Bob")
        .state("seen", 1)
        .state_insert_rule("seen", &["x"], "?ping(x)");
    let comp = b.build().expect("well-formed composition");

    let mut verifier = Verifier::new(comp);
    let opts = VerifyOptions {
        fresh_values: Some(2),
        ..VerifyOptions::default()
    };

    // 2. A property that HOLDS over every database: pings carry friends.
    let report = verifier
        .check_str("G (forall x: Bob.?ping(x) -> Alice.friend(x))", &opts)
        .expect("verification runs");
    println!(
        "pings-carry-friends: {} ({} states over {} valuations)",
        if report.outcome.holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        },
        report.stats.states_visited,
        report.valuations_checked,
    );

    // 3. A property that is VIOLATED: the verifier invents the database,
    //    the user input and the run — and prints all three.
    let report = verifier
        .check_str("G (forall x: Bob.?ping(x) -> false)", &opts)
        .expect("verification runs");
    match report.outcome {
        Outcome::Violated(cex) => {
            println!("\nno-ping-ever is refuted; witness:\n");
            println!("{}", cex.display(verifier.composition()));
        }
        _ => unreachable!("a ping is clearly deliverable"),
    }
}
