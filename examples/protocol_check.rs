//! Conversation protocols (Section 4): data-agnostic and data-aware
//! checks on a request/response composition, Example 4.1 style.
//!
//! Run with `cargo run --release --example protocol_check`.

use ddws_model::{CompositionBuilder, QueueKind};
use ddws_protocol::{automata_shapes, DataAgnosticProtocol, DataAwareProtocol, Observer};
use ddws_relational::{Instance, Tuple};
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn main() {
    let mut b = CompositionBuilder::new();
    b.channel("getRating", 1, QueueKind::Flat, "O", "CR");
    b.channel("rating", 2, QueueKind::Flat, "CR", "O");
    b.peer("O")
        .database("customer", 1)
        .input("check", 1)
        .input_rule("check", &["ssn"], "customer(ssn)")
        .send_rule("getRating", &["ssn"], "check(ssn)");
    b.peer("CR").database("creditRating", 2).send_rule(
        "rating",
        &["ssn", "cat"],
        "?getRating(ssn) and creditRating(ssn, cat)",
    );
    let mut verifier = Verifier::new(b.build().expect("composition"));

    let mut db = Instance::empty(&verifier.composition().voc);
    let s1 = verifier.composition_mut().symbols.intern("s1");
    let fair = verifier.composition_mut().symbols.intern("fair");
    let customer = verifier.composition().voc.lookup("O.customer").unwrap();
    let credit = verifier
        .composition()
        .voc
        .lookup("CR.creditRating")
        .unwrap();
    db.relation_mut(customer).insert(Tuple::new(vec![s1]));
    db.relation_mut(credit).insert(Tuple::new(vec![s1, fair]));

    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        ..VerifyOptions::default()
    };

    // Example 4.1: G(getRating → F rating). Fails under unfair scheduling
    // and lossy channels — the paper's decidable observer-at-recipient
    // placement reports exactly that.
    let response = DataAgnosticProtocol::new(
        verifier.composition(),
        &["getRating", "rating"],
        automata_shapes::response(2, 0, 1),
        Observer::AtRecipient,
    )
    .unwrap();
    let report = verifier.check_data_agnostic(&response, &opts).unwrap();
    println!(
        "data-agnostic G(getRating -> F rating): {} ({} states)",
        if report.outcome.holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        },
        report.stats.states_visited
    );

    // No rating may be delivered before the first request.
    let no_early = {
        use ddws_automata::{Guard, Nba};
        let mut nba = Nba::new(2, 2);
        nba.add_initial(0);
        nba.add_transition(0, Guard::forbid(1).and(Guard::forbid(0)), 0);
        nba.add_transition(0, Guard::require(0), 1);
        nba.add_transition(1, Guard::TOP, 1);
        nba.accepting[0] = true;
        nba.accepting[1] = true;
        DataAgnosticProtocol::new(
            verifier.composition(),
            &["getRating", "rating"],
            nba,
            Observer::AtRecipient,
        )
        .unwrap()
    };
    let report = verifier.check_data_agnostic(&no_early, &opts).unwrap();
    println!(
        "data-agnostic no-rating-before-request: {} ({} states)",
        if report.outcome.holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        },
        report.stats.states_visited
    );

    // Data-aware (Definition 4.4): every rating message matches the
    // agency's database — message *contents*, not just names.
    let aware = DataAwareProtocol::new(
        verifier.composition_mut(),
        &[(
            "rating_is_db_backed",
            "forall ssn, cat: CR.!rating(ssn, cat) -> CR.creditRating(ssn, cat)",
        )],
        automata_shapes::universal(1), // guard must hold — use G p0:
    )
    .unwrap();
    // G p0 as a deterministic automaton:
    let aware = {
        use ddws_automata::{Guard, Nba};
        let mut nba = Nba::new(1, 1);
        nba.add_initial(0);
        nba.add_transition(0, Guard::require(0), 0);
        nba.accepting[0] = true;
        DataAwareProtocol {
            symbols: aware.symbols,
            guards: aware.guards,
            automaton: nba,
        }
    };
    let report = verifier.check_data_aware(&aware, &opts).unwrap();
    println!(
        "data-aware ratings-match-database: {} ({} states)",
        if report.outcome.holds() {
            "HOLDS"
        } else {
            "VIOLATED"
        },
        report.stats.states_visited
    );
}
