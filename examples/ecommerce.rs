//! The introduction's motivating scenario: a storefront that charges cards
//! through an external payment-gateway Web service.
//!
//! Run with `cargo run --release --example ecommerce`.

use ddws::scenarios::ecommerce;
use ddws_model::Semantics;
use ddws_verifier::{DatabaseMode, Verifier, VerifyOptions};

fn main() {
    let mut verifier = Verifier::new(ecommerce::composition(true, Semantics::default()));
    let db = ecommerce::demo_database(verifier.composition_mut());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        ..VerifyOptions::default()
    };

    for (name, prop) in [
        (
            "confirmed charges use valid cards",
            ecommerce::PROP_CHARGES_ARE_VALID,
        ),
        ("only catalog items ship", ecommerce::PROP_SHIP_FROM_CATALOG),
    ] {
        match verifier.check_str(prop, &opts) {
            Ok(report) => println!(
                "[{name}] {} ({} states, {} valuations)",
                if report.outcome.holds() {
                    "HOLDS"
                } else {
                    "VIOLATED"
                },
                report.stats.states_visited,
                report.valuations_checked
            ),
            Err(e) => println!("[{name}] error: {e}"),
        }
    }
}
