//! The paper's running example end-to-end (Figure 1, Examples 1.1, 2.2,
//! 3.2): the four-peer bank-loan composition, verified against the paper's
//! own properties.
//!
//! Run with `cargo run --release --example bank_loan`.

use ddws::scenarios::bank_loan;
use ddws_model::Semantics;
use ddws_verifier::{DatabaseMode, Outcome, Verifier, VerifyOptions};
use std::time::Instant;

fn main() {
    let sem = Semantics {
        nested_send_skips_empty: true,
        ..Semantics::default()
    };
    let mut verifier = Verifier::new(bank_loan::composition(true, sem));
    let db = bank_loan::demo_database(verifier.composition_mut());
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        max_states: 20_000_000,
        ..VerifyOptions::default()
    };

    println!("bank-loan composition: {} peers, {} channels", 4, 7);
    println!(
        "input-bounded: {}",
        verifier
            .composition()
            .check_input_bounded(Default::default())
            .is_ok()
    );

    for (name, prop) in [
        (
            "ratings reflect the agency DB (strict)",
            bank_loan::PROP_RATINGS_REFLECT_DB,
        ),
        (
            "no rating is ever received (strict)",
            bank_loan::PROP_NO_RATING_EVER,
        ),
        (
            "recorded applications persist (two closure variables)",
            "forall id, l: G (O.application(id, l) -> X O.application(id, l))",
        ),
    ] {
        let t0 = Instant::now();
        match verifier.check_str(prop, &opts) {
            Ok(report) => {
                println!(
                    "\n[{name}]\n  verdict: {}  states: {}  transitions: {}  valuations: {}  in {:?}",
                    if report.outcome.holds() { "HOLDS" } else { "VIOLATED" },
                    report.stats.states_visited,
                    report.stats.transitions_explored,
                    report.valuations_checked,
                    t0.elapsed()
                );
                if let Outcome::Violated(cex) = report.outcome {
                    let total = cex.prefix.len() + cex.cycle.len();
                    println!(
                        "  counterexample run of {total} snapshots (prefix {} + cycle {})",
                        cex.prefix.len(),
                        cex.cycle.len()
                    );
                }
            }
            Err(e) => println!("\n[{name}]\n  error: {e}"),
        }
    }

    // Properties with four closure variables (property (11), letters-imply-
    // applications) cost one full model-checking run per valuation —
    // |domain|^4 of them. That sweep is a benchmark-scale job
    // (EXPERIMENTS.md); opt in explicitly:
    if std::env::var_os("DDWS_RUN_PROPERTY_11").is_some() {
        let t0 = Instant::now();
        match verifier.check_str(bank_loan::PROP_EVERY_APPLICATION_ANSWERED, &opts) {
            Ok(report) => println!(
                "\n[property (11): every application answered]\n  verdict: {}  states: {}  \
                 valuations: {}  in {:?}",
                if report.outcome.holds() {
                    "HOLDS"
                } else {
                    "VIOLATED"
                },
                report.stats.states_visited,
                report.valuations_checked,
                t0.elapsed()
            ),
            Err(e) => println!("\n[property (11)]\n  error: {e}"),
        }
    } else {
        println!("\n(property (11) sweep skipped; set DDWS_RUN_PROPERTY_11=1 to run it)");
    }
}
