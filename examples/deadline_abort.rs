//! Deadline-abort smoke check (DESIGN.md §3.10): run the 3-peer chain
//! scenario under an immediately-expiring deadline, demonstrate that the
//! stop is a *graceful outcome* — `Ok` with `Outcome::Inconclusive`, a
//! resumable checkpoint, and exactly one abort-labelled `RunReport` — then
//! resume the checkpoint without the deadline and confirm the verdict.
//! The abort report is written to `ABORT_REPORT.json`, re-parsed, and
//! validated against the documented schema. Exits non-zero on any
//! mismatch — CI runs this and uploads the report as an artifact.
//!
//! Run with `cargo run --release --example deadline_abort`.

use ddws::scenarios::chains;
use ddws_model::Semantics;
use ddws_telemetry::Json;
use ddws_verifier::{
    validate_run_report, BufferReporter, DatabaseMode, Outcome, ReporterHandle, RunReport,
    Verifier, VerifyOptions,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn run() -> Result<(), String> {
    let buf = Arc::new(BufferReporter::new());
    let mut verifier = Verifier::new(chains::composition(3, true, Semantics::default()));
    let db = chains::database(verifier.composition_mut(), 2);

    // A zero deadline expires before the first expansion: the search must
    // stop immediately, without a verdict and without an error.
    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        deadline: Some(Duration::ZERO),
        reporter: ReporterHandle::new(buf.clone()),
        ..VerifyOptions::default()
    };
    let property = chains::prop_integrity(3);
    let report = verifier
        .check_str(&property, &opts)
        .map_err(|e| format!("a deadline stop must not be an error: {e}"))?;
    let stop = match report.outcome {
        Outcome::Inconclusive(stop) => stop,
        other => return Err(format!("expected an inconclusive outcome, got {other:?}")),
    };

    // Exactly one final report, labelled for the deadline, with the abort
    // object attached; write it out and validate what landed on disk.
    let reports = buf.take_reports();
    if reports.len() != 1 {
        return Err(format!(
            "expected exactly one final report, got {}",
            reports.len()
        ));
    }
    let emitted = &reports[0];
    if emitted.outcome != "deadline_exceeded" {
        return Err(format!("wrong outcome label: {}", emitted.outcome));
    }
    let abort = emitted
        .abort
        .as_ref()
        .ok_or("abort object missing from the report")?;
    if abort.reason != "deadline_exceeded" || !abort.resumable {
        return Err(format!("incoherent abort object: {abort:?}"));
    }
    std::fs::write("ABORT_REPORT.json", format!("{}\n", emitted.to_json()))
        .map_err(|e| format!("write ABORT_REPORT.json: {e}"))?;
    let text = std::fs::read_to_string("ABORT_REPORT.json")
        .map_err(|e| format!("read ABORT_REPORT.json: {e}"))?;
    let value = Json::parse(text.trim()).map_err(|e| format!("ABORT_REPORT.json: {e}"))?;
    validate_run_report(&value).map_err(|e| format!("schema violation: {e}"))?;
    let parsed = RunReport::from_json(text.trim()).map_err(|e| format!("round-trip parse: {e}"))?;
    if &parsed != emitted {
        return Err("ABORT_REPORT.json does not round-trip to the emitted report".into());
    }

    // Resume the checkpoint without the deadline: the search continues to
    // the ordinary verdict, reporting under `entry_point: "resume"`.
    let checkpoint = stop
        .checkpoint
        .ok_or("a deadline stop from `check` must carry a checkpoint")?;
    let resume_opts = VerifyOptions {
        reporter: ReporterHandle::new(buf.clone()),
        ..VerifyOptions::default()
    };
    let resumed = verifier
        .resume(checkpoint, &resume_opts)
        .map_err(|e| format!("resume failed: {e}"))?;
    if resumed.outcome.is_inconclusive() {
        return Err("the resumed run must reach a verdict".into());
    }
    let resumed_reports = buf.take_reports();
    if resumed_reports.len() != 1 || resumed_reports[0].entry_point != "resume" {
        return Err("the resumed run must emit one report labelled `resume`".into());
    }

    println!(
        "deadline_abort: ok — abort outcome={} (budget {} ns, resumable), \
         resumed to outcome={} visiting {} states (ABORT_REPORT.json)",
        parsed.outcome, abort.budget, resumed_reports[0].outcome, resumed.stats.states_visited,
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("deadline_abort: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
