//! Telemetry smoke check: one bank-loan verification with the JSON-lines
//! reporter streaming to stderr, the final `RunReport` written to
//! `RUN_REPORT.json`, re-parsed, and validated against the documented
//! schema (DESIGN.md §3.9). Exits non-zero on any mismatch — CI runs this
//! and uploads the report as an artifact.
//!
//! Run with `cargo run --release --example telemetry_smoke`.

use ddws::scenarios::bank_loan;
use ddws_model::Semantics;
use ddws_telemetry::Json;
use ddws_verifier::{
    validate_run_report, BufferReporter, DatabaseMode, JsonLinesReporter, ReporterHandle,
    RunReport, Verifier, VerifyOptions, SCHEMA_NAME, SCHEMA_VERSION,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn run() -> Result<(), String> {
    let mut verifier = Verifier::new(bank_loan::composition(
        true,
        Semantics {
            nested_send_skips_empty: true,
            ..Semantics::default()
        },
    ));
    let db = bank_loan::demo_database(verifier.composition_mut());

    // Stream progress + final report as JSON lines to stderr, and keep an
    // in-memory copy of the final report for the artifact.
    struct Tee {
        lines: JsonLinesReporter,
        buffer: BufferReporter,
    }
    impl ddws_verifier::Reporter for Tee {
        fn progress(&self, s: &ddws_telemetry::Progress) {
            self.lines.progress(s);
        }
        fn report(&self, r: &RunReport) {
            self.lines.report(r);
            self.buffer.report(r);
        }
    }
    let tee = Arc::new(Tee {
        lines: JsonLinesReporter::stderr(),
        buffer: BufferReporter::new(),
    });

    let opts = VerifyOptions {
        database: DatabaseMode::Fixed(db),
        fresh_values: Some(1),
        reporter: ReporterHandle::new(tee.clone()),
        progress_interval: Some(Duration::from_millis(100)),
        ..VerifyOptions::default()
    };
    let report = verifier
        .check_str(bank_loan::PROP_RATINGS_REFLECT_DB, &opts)
        .map_err(|e| format!("verification failed: {e}"))?;
    if !report.outcome.holds() {
        return Err("PROP_RATINGS_REFLECT_DB must hold on the demo database".into());
    }

    let reports = tee.buffer.take_reports();
    if reports.len() != 1 {
        return Err(format!(
            "expected exactly one final report, got {}",
            reports.len()
        ));
    }
    let json = reports[0].to_json();
    std::fs::write("RUN_REPORT.json", format!("{json}\n"))
        .map_err(|e| format!("write RUN_REPORT.json: {e}"))?;

    // Re-read the artifact and validate what actually landed on disk.
    let text = std::fs::read_to_string("RUN_REPORT.json")
        .map_err(|e| format!("read RUN_REPORT.json: {e}"))?;
    let value = Json::parse(text.trim()).map_err(|e| format!("RUN_REPORT.json: {e}"))?;
    validate_run_report(&value).map_err(|e| format!("schema violation: {e}"))?;
    let parsed = RunReport::from_json(text.trim()).map_err(|e| format!("round-trip parse: {e}"))?;
    if parsed != reports[0] {
        return Err("RUN_REPORT.json does not round-trip to the emitted report".into());
    }
    if parsed != report.telemetry {
        return Err("reporter copy diverges from Report::telemetry".into());
    }

    println!(
        "telemetry_smoke: ok — {SCHEMA_NAME} v{SCHEMA_VERSION}, entry_point={}, \
         outcome={}, {} states in {:.3}s (RUN_REPORT.json)",
        parsed.entry_point,
        parsed.outcome,
        parsed.counters.states_visited,
        parsed.phases.total_ns as f64 / 1e9,
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("telemetry_smoke: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
